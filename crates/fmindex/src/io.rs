//! Binary persistence for the FM-index.
//!
//! Pre-computation is one-off (paper Fig. 2: "it is just a one-step
//! computation") — a deployed platform builds the tables once and loads
//! them at boot. This module defines a compact little-endian format:
//!
//! ```text
//! magic  "PIMFMI2\n"
//! u64    text length (incl. sentinel); must fit in u32 (position bound)
//! u64    sentinel position in the BWT
//! [u8]   BWT nucleotides, 2-bit packed (sentinel cell holds a placeholder)
//! u32×4  Count table
//! u64    bucket width d
//! u64    marker bucket count, then u32×4 per bucket
//! u8     SA tag (0 = full, 1 = sampled) [+ u32 rate when sampled]
//! u64    stored SA entry count, then u32 per entry (sampled: row index
//!        u32 + value u32 pairs)
//! u64    FNV-1a-64 checksum of every byte after the magic
//! ```
//!
//! [`load`] verifies the trailing checksum and rejects streams with
//! trailing garbage; a short read anywhere surfaces as
//! [`LoadIndexError::Corrupt`] naming the table that was cut off. The
//! previous `PIMFMI1` format (same body, no checksum) remains loadable
//! through a compat path so existing artifacts keep working; [`save`]
//! always writes `PIMFMI2`.
//!
//! The full Occ table is *not* stored; it is rebuilt from the BWT on
//! load (linear time, and 16 bytes/base on disk would dwarf everything
//! else).
//!
//! Functions take `R: Read` / `W: Write` by value; pass `&mut reader` to
//! reuse a stream.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::index::FmIndex;

/// Magic bytes heading every serialised index (current version).
pub const MAGIC: &[u8; 8] = b"PIMFMI2\n";

/// Magic of the legacy checksum-free format, still accepted by [`load`].
pub const MAGIC_V1: &[u8; 8] = b"PIMFMI1\n";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Error returned by [`load`].
#[derive(Debug)]
pub enum LoadIndexError {
    /// Underlying I/O failure (not a short read — those are [`Corrupt`]).
    ///
    /// [`Corrupt`]: LoadIndexError::Corrupt
    Io(io::Error),
    /// The stream starts with neither [`MAGIC`] nor [`MAGIC_V1`].
    BadMagic,
    /// The declared text length exceeds the `u32` position bound
    /// ([`FmIndex::MAX_REFERENCE_LEN`]); such an index can never have
    /// been written by a correct builder.
    TooLarge {
        /// The declared text length (reference + sentinel).
        len: usize,
    },
    /// Structurally invalid contents: truncation, checksum mismatch,
    /// trailing garbage, or inconsistent tables.
    Corrupt(String),
}

impl fmt::Display for LoadIndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadIndexError::Io(e) => write!(f, "index read failed: {e}"),
            LoadIndexError::BadMagic => f.write_str("not a PIM-Aligner FM-index stream"),
            LoadIndexError::TooLarge { len } => write!(
                f,
                "index text of {len} rows exceeds the u32 position bound ({} rows max)",
                u32::MAX
            ),
            LoadIndexError::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
        }
    }
}

impl Error for LoadIndexError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LoadIndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadIndexError {
    fn from(e: io::Error) -> Self {
        LoadIndexError::Io(e)
    }
}

/// FNV-1a-64 over a running stream — cheap, dependency-free, and plenty
/// for catching torn writes and bit rot (this is an integrity check, not
/// an authenticity one).
struct HashingWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hash: FNV_OFFSET,
        }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        for &b in &buf[..n] {
            self.hash = (self.hash ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

struct HashingReader<R: Read> {
    inner: R,
    hash: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            hash: FNV_OFFSET,
        }
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        for &b in &buf[..n] {
            self.hash = (self.hash ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        Ok(n)
    }
}

/// Serialises an index in the current (`PIMFMI2`) format.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
/// use fmindex::{io as fm_io, FmIndex};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let index = FmIndex::builder().bucket_width(4).build(&"GATTACA".parse::<DnaSeq>()?);
/// let mut buffer = Vec::new();
/// fm_io::save(&index, &mut buffer)?;
/// let restored = fm_io::load(buffer.as_slice())?;
/// assert_eq!(restored.find(&"TTA".parse::<DnaSeq>()?), index.find(&"TTA".parse::<DnaSeq>()?));
/// # Ok(())
/// # }
/// ```
pub fn save<W: Write>(index: &FmIndex, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    let mut hashed = HashingWriter::new(&mut writer);
    save_body(index, &mut hashed)?;
    let digest = hashed.hash;
    writer.write_all(&digest.to_le_bytes())?;
    writer.flush()
}

fn save_body<W: Write>(index: &FmIndex, writer: &mut W) -> io::Result<()> {
    let n = index.text_len() as u64;
    writer.write_all(&n.to_le_bytes())?;
    let bwt = index.bwt();
    writer.write_all(&(bwt.sentinel_pos() as u64).to_le_bytes())?;
    let (packed, _) = bwt.to_packed();
    writer.write_all(packed.as_bytes())?;
    for c in index.count_table().as_array() {
        writer.write_all(&c.to_le_bytes())?;
    }
    let mt = index.marker_table();
    writer.write_all(&(mt.bucket_width() as u64).to_le_bytes())?;
    writer.write_all(&(mt.buckets() as u64).to_le_bytes())?;
    for bucket in 0..mt.buckets() {
        for base in bioseq::Base::ALL {
            writer.write_all(&mt.marker(base, bucket).to_le_bytes())?;
        }
    }
    match index.sa_samples() {
        crate::locate::SuffixArraySamples::Full(values) => {
            writer.write_all(&[0u8])?;
            writer.write_all(&(values.len() as u64).to_le_bytes())?;
            for &v in values {
                writer.write_all(&v.to_le_bytes())?;
            }
        }
        crate::locate::SuffixArraySamples::Sampled { values, rate } => {
            writer.write_all(&[1u8])?;
            writer.write_all(&rate.to_le_bytes())?;
            writer.write_all(&(values.len() as u64).to_le_bytes())?;
            let stored: Vec<(u32, u32)> = values
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != u32::MAX)
                .map(|(row, &v)| (row as u32, v))
                .collect();
            writer.write_all(&(stored.len() as u64).to_le_bytes())?;
            for (row, v) in stored {
                writer.write_all(&row.to_le_bytes())?;
                writer.write_all(&v.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Deserialises an index previously written by [`save`], rebuilding the
/// derived Occ table.
///
/// Accepts the current `PIMFMI2` format (checksum verified) and the
/// legacy `PIMFMI1` format (no checksum to verify). Both must end
/// exactly where the format says they do — trailing bytes are rejected.
///
/// # Errors
///
/// Returns [`LoadIndexError`] on I/O failure, a wrong magic, an
/// over-long text, or structurally invalid contents (including
/// truncation and checksum mismatch).
pub fn load<R: Read>(mut reader: R) -> Result<FmIndex, LoadIndexError> {
    let mut magic = [0u8; 8];
    read_exact_in(&mut reader, &mut magic, "magic")?;
    if &magic == MAGIC {
        let mut hashed = HashingReader::new(&mut reader);
        let index = load_body(&mut hashed)?;
        let digest = hashed.hash;
        let mut trailer = [0u8; 8];
        read_exact_in(&mut reader, &mut trailer, "checksum")?;
        if u64::from_le_bytes(trailer) != digest {
            return Err(LoadIndexError::Corrupt("checksum mismatch".into()));
        }
        ensure_end_of_stream(&mut reader)?;
        Ok(index)
    } else if &magic == MAGIC_V1 {
        let index = load_body(&mut reader)?;
        ensure_end_of_stream(&mut reader)?;
        Ok(index)
    } else {
        Err(LoadIndexError::BadMagic)
    }
}

fn load_body<R: Read>(reader: &mut R) -> Result<FmIndex, LoadIndexError> {
    let n = read_u64(reader, "text length")? as usize;
    if n == 0 {
        return Err(LoadIndexError::Corrupt("empty text".into()));
    }
    if n > u32::MAX as usize {
        return Err(LoadIndexError::TooLarge { len: n });
    }
    let sentinel = read_u64(reader, "sentinel")? as usize;
    if sentinel >= n {
        return Err(LoadIndexError::Corrupt("sentinel out of range".into()));
    }
    let mut packed = vec![0u8; n.div_ceil(4)];
    read_exact_in(reader, &mut packed, "BWT")?;
    let mut count = [0u32; 4];
    for c in &mut count {
        *c = read_u32(reader, "count table")?;
    }
    let bucket_width = read_u64(reader, "marker table")? as usize;
    if bucket_width == 0 {
        return Err(LoadIndexError::Corrupt("zero bucket width".into()));
    }
    let buckets = read_u64(reader, "marker table")? as usize;
    if buckets != n / bucket_width + 1 {
        return Err(LoadIndexError::Corrupt("bucket count mismatch".into()));
    }
    let mut markers = Vec::with_capacity(buckets * 4);
    for _ in 0..buckets * 4 {
        markers.push(read_u32(reader, "marker table")?);
    }
    let mut tag = [0u8; 1];
    read_exact_in(reader, &mut tag, "SA tag")?;
    let samples = match tag[0] {
        0 => {
            let len = read_u64(reader, "suffix array")? as usize;
            if len != n {
                return Err(LoadIndexError::Corrupt("SA length mismatch".into()));
            }
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(read_u32(reader, "suffix array")?);
            }
            crate::locate::SuffixArraySamples::Full(values)
        }
        1 => {
            let rate = read_u32(reader, "suffix array")?;
            if rate == 0 {
                return Err(LoadIndexError::Corrupt("zero SA rate".into()));
            }
            let len = read_u64(reader, "suffix array")? as usize;
            if len != n {
                return Err(LoadIndexError::Corrupt("SA length mismatch".into()));
            }
            let stored = read_u64(reader, "suffix array")? as usize;
            let mut values = vec![u32::MAX; len];
            for _ in 0..stored {
                let row = read_u32(reader, "suffix array")? as usize;
                let v = read_u32(reader, "suffix array")?;
                if row >= len {
                    return Err(LoadIndexError::Corrupt("SA row out of range".into()));
                }
                values[row] = v;
            }
            crate::locate::SuffixArraySamples::Sampled { values, rate }
        }
        other => {
            return Err(LoadIndexError::Corrupt(format!("unknown SA tag {other}")));
        }
    };
    FmIndex::from_stored_parts(n, sentinel, &packed, count, bucket_width, markers, samples)
        .map_err(LoadIndexError::Corrupt)
}

/// Reads exactly `buf.len()` bytes, converting a short read into
/// [`LoadIndexError::Corrupt`] naming the table it happened in.
fn read_exact_in<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    section: &str,
) -> Result<(), LoadIndexError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            LoadIndexError::Corrupt(format!("truncated in {section}"))
        } else {
            LoadIndexError::Io(e)
        }
    })
}

fn read_u64<R: Read>(reader: &mut R, section: &str) -> Result<u64, LoadIndexError> {
    let mut b = [0u8; 8];
    read_exact_in(reader, &mut b, section)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32<R: Read>(reader: &mut R, section: &str) -> Result<u32, LoadIndexError> {
    let mut b = [0u8; 4];
    read_exact_in(reader, &mut b, section)?;
    Ok(u32::from_le_bytes(b))
}

fn ensure_end_of_stream<R: Read>(reader: &mut R) -> Result<(), LoadIndexError> {
    let mut probe = [0u8; 1];
    match reader.read(&mut probe) {
        Ok(0) => Ok(()),
        Ok(_) => Err(LoadIndexError::Corrupt(
            "trailing bytes after the index".into(),
        )),
        Err(e) => Err(LoadIndexError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FmIndex, SaStorage};
    use bioseq::DnaSeq;

    fn sample_index(storage: SaStorage) -> FmIndex {
        let reference: DnaSeq = "GATTACAGATTACAGGGTTTCCCAAATGCA".parse().unwrap();
        FmIndex::builder()
            .bucket_width(4)
            .sa_storage(storage)
            .build(&reference)
    }

    fn round_trip(index: &FmIndex) -> FmIndex {
        let mut buffer = Vec::new();
        save(index, &mut buffer).expect("save");
        load(buffer.as_slice()).expect("load")
    }

    #[test]
    fn full_sa_round_trip_preserves_queries() {
        let index = sample_index(SaStorage::Full);
        let restored = round_trip(&index);
        for read in ["GATT", "TACA", "GGG", "TTTT", "A"] {
            let read: DnaSeq = read.parse().unwrap();
            assert_eq!(restored.find(&read), index.find(&read), "read {read}");
            assert_eq!(restored.count(&read), index.count(&read));
        }
        assert_eq!(restored.bwt().to_string(), index.bwt().to_string());
        assert_eq!(restored.bucket_width(), index.bucket_width());
    }

    #[test]
    fn sampled_sa_round_trip_preserves_queries() {
        let index = sample_index(SaStorage::Sampled(4));
        let restored = round_trip(&index);
        for read in ["GATTACA", "CCC", "ATG"] {
            let read: DnaSeq = read.parse().unwrap();
            assert_eq!(restored.find(&read), index.find(&read), "read {read}");
        }
        assert_eq!(restored.size_bytes(), index.size_bytes());
    }

    #[test]
    fn inexact_queries_survive_round_trip() {
        let index = sample_index(SaStorage::Full);
        let restored = round_trip(&index);
        let read: DnaSeq = "GATGACA".parse().unwrap();
        let budget = crate::EditBudget::substitutions_only(1);
        assert_eq!(
            restored.search_inexact(&read, budget),
            index.search_inexact(&read, budget)
        );
    }

    /// `size_bytes()` must equal the bytes `save` actually writes, modulo
    /// the fixed per-stream overhead: magic(8) + n(8) + sentinel(8) +
    /// count(16) + bucket width(8) + bucket count(8) + SA tag(1) + SA
    /// header (full: len(8); sampled: rate(4) + len(8) + stored(8)) +
    /// checksum(8).
    #[test]
    fn size_bytes_matches_serialized_bytes() {
        for (storage, overhead) in [(SaStorage::Full, 73usize), (SaStorage::Sampled(4), 85)] {
            let index = sample_index(storage);
            let mut buffer = Vec::new();
            save(&index, &mut buffer).unwrap();
            assert_eq!(
                index.size_bytes(),
                buffer.len() - overhead,
                "accounting drifted from the serializer for {storage:?}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load(&b"NOTANIDX________"[..]).unwrap_err();
        assert!(matches!(err, LoadIndexError::BadMagic));
        assert!(err.to_string().contains("not a PIM-Aligner"));
    }

    #[test]
    fn truncation_is_reported_as_corrupt_with_section() {
        let index = sample_index(SaStorage::Full);
        let mut buffer = Vec::new();
        save(&index, &mut buffer).unwrap();
        // Cut the stream at every byte boundary: each must produce a
        // Corrupt("truncated in …") error, never a bare Io error.
        for cut in 8..buffer.len() {
            let err = load(&buffer[..cut]).unwrap_err();
            match err {
                LoadIndexError::Corrupt(msg) => {
                    assert!(msg.contains("truncated in"), "cut {cut}: {msg}")
                }
                other => panic!("cut {cut}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn checksum_mismatch_detected() {
        let index = sample_index(SaStorage::Full);
        let mut buffer = Vec::new();
        save(&index, &mut buffer).unwrap();
        let last = buffer.len() - 1;
        buffer[last] ^= 0xFF; // flip a bit of the trailing checksum
        let err = load(buffer.as_slice()).unwrap_err();
        match err {
            LoadIndexError::Corrupt(msg) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let index = sample_index(SaStorage::Sampled(4));
        let mut buffer = Vec::new();
        save(&index, &mut buffer).unwrap();
        buffer.extend_from_slice(b"EXTRA");
        let err = load(buffer.as_slice()).unwrap_err();
        match err {
            LoadIndexError::Corrupt(msg) => assert!(msg.contains("trailing"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn legacy_v1_stream_still_loads() {
        let index = sample_index(SaStorage::Sampled(4));
        let mut buffer = Vec::new();
        save(&index, &mut buffer).unwrap();
        // A V1 stream is the same body with the old magic and no
        // trailing checksum.
        buffer[..8].copy_from_slice(MAGIC_V1);
        buffer.truncate(buffer.len() - 8);
        let restored = load(buffer.as_slice()).expect("v1 compat load");
        let read: DnaSeq = "GATTACA".parse().unwrap();
        assert_eq!(restored.find(&read), index.find(&read));
        assert_eq!(restored.size_bytes(), index.size_bytes());
    }

    #[test]
    fn oversized_text_length_is_too_large() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(MAGIC);
        buffer.extend_from_slice(&(u32::MAX as u64 + 1).to_le_bytes());
        let err = load(buffer.as_slice()).unwrap_err();
        match err {
            LoadIndexError::TooLarge { len } => {
                assert_eq!(len, u32::MAX as usize + 1);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert!(err.to_string().contains("u32 position bound"));
    }

    #[test]
    fn genuine_io_errors_stay_io() {
        struct FailingReader;
        impl Read for FailingReader {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::other("disk on fire"))
            }
        }
        let err = load(FailingReader).unwrap_err();
        match err {
            LoadIndexError::Io(e) => assert_eq!(e.to_string(), "disk on fire"),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_bucket_count_detected() {
        let index = sample_index(SaStorage::Full);
        let mut buffer = Vec::new();
        save(&index, &mut buffer).unwrap();
        // Bucket-width field lives after magic(8) + n(8) + sentinel(8) +
        // packed BWT + count(16).
        let n = index.text_len();
        let offset = 8 + 8 + 8 + n.div_ceil(4) + 16;
        buffer[offset] = 0xFF; // mangle the bucket width
        let err = load(buffer.as_slice()).unwrap_err();
        assert!(matches!(err, LoadIndexError::Corrupt(_)), "{err}");
    }

    #[test]
    fn error_type_is_well_behaved() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<LoadIndexError>();
    }
}
