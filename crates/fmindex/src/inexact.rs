//! Inexact alignment with bounded backtracking (paper §III, Algorithm 2).
//!
//! "Inexact matching searches for intervals-I that match R with no more
//! than z differences … we should consider all possible alignments when
//! updating the intervals I", taking the union over match, mismatch and
//! (optionally) insertion/deletion branches. The recursion reuses the same
//! `LFM` procedure as exact search, which is what makes it directly
//! PIM-acceleratable.

use std::collections::HashMap;

use bioseq::{Base, DnaSeq};

use crate::bwt::Bwt;
use crate::search::{backward_step, SaInterval};
use crate::tables::MarkerTable;

/// The edit budget for inexact search: up to `max_diffs` differences,
/// optionally including insertions/deletions ("the DNA short read is
/// permuted using edit operations (substitutions, insertions or
/// deletions)").
///
/// # Examples
///
/// ```
/// use fmindex::EditBudget;
///
/// let z1 = EditBudget::substitutions_only(1);
/// assert_eq!(z1.max_diffs(), 1);
/// assert!(!z1.allows_indels());
///
/// let full = EditBudget::edits(2);
/// assert!(full.allows_indels());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EditBudget {
    max_diffs: u8,
    allow_indels: bool,
}

impl EditBudget {
    /// Largest supported difference budget. The paper evaluates `z ≤ 2`
    /// ("reads with ≤ 2 mismatches"); larger budgets explode the
    /// backtracking tree, so we cap at 8.
    pub const MAX_DIFFS: u8 = 8;

    /// A budget of `z` substitutions, no indels.
    ///
    /// # Panics
    ///
    /// Panics if `z > Self::MAX_DIFFS`.
    pub fn substitutions_only(z: u8) -> EditBudget {
        assert!(z <= Self::MAX_DIFFS, "difference budget too large");
        EditBudget {
            max_diffs: z,
            allow_indels: false,
        }
    }

    /// A budget of `z` edits (substitutions, insertions and deletions).
    ///
    /// # Panics
    ///
    /// Panics if `z > Self::MAX_DIFFS`.
    pub fn edits(z: u8) -> EditBudget {
        assert!(z <= Self::MAX_DIFFS, "difference budget too large");
        EditBudget {
            max_diffs: z,
            allow_indels: true,
        }
    }

    /// The maximum number of differences `z`.
    pub fn max_diffs(&self) -> u8 {
        self.max_diffs
    }

    /// Whether insertions/deletions are allowed.
    pub fn allows_indels(&self) -> bool {
        self.allow_indels
    }
}

/// One inexact hit: a non-empty SA interval and the number of differences
/// consumed on the cheapest path that reached it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InexactHit {
    /// The matching SA interval.
    pub interval: SaInterval,
    /// Differences used (0 means the read matched exactly).
    pub diffs: u8,
}

/// Runs Algorithm 2: finds all SA intervals matching `read` with at most
/// `budget.max_diffs()` differences.
///
/// Hits are deduplicated by interval, keeping the minimum difference
/// count, and returned sorted by `(diffs, interval)` so exact hits come
/// first. An exact match therefore appears as a hit with `diffs == 0`.
pub fn search_inexact(
    mt: &MarkerTable,
    bwt: &Bwt,
    read: &DnaSeq,
    budget: EditBudget,
) -> Vec<InexactHit> {
    let mut best: HashMap<SaInterval, u8> = HashMap::new();
    let start = SaInterval::full(bwt.len());
    recur(
        mt,
        bwt,
        read,
        budget,
        read.len() as isize - 1,
        budget.max_diffs() as i16,
        start,
        &mut best,
    );
    let mut hits: Vec<InexactHit> = best
        .into_iter()
        .map(|(interval, diffs)| InexactHit { interval, diffs })
        .collect();
    hits.sort_by_key(|h| (h.diffs, h.interval));
    hits
}

#[allow(clippy::too_many_arguments)]
fn recur(
    mt: &MarkerTable,
    bwt: &Bwt,
    read: &DnaSeq,
    budget: EditBudget,
    i: isize,
    z: i16,
    interval: SaInterval,
    best: &mut HashMap<SaInterval, u8>,
) {
    if z < 0 {
        return; // Algorithm 2 line 6: tolerance exhausted
    }
    if i < 0 {
        // Whole read consumed: report the interval (Algorithm 2 line 4).
        let diffs = budget.max_diffs() - z as u8;
        best.entry(interval)
            .and_modify(|d| *d = (*d).min(diffs))
            .or_insert(diffs);
        return;
    }
    // Insertion in the read (extra read base not present in the
    // reference): skip read[i] without moving the interval.
    if budget.allows_indels() {
        recur(mt, bwt, read, budget, i - 1, z - 1, interval, best);
    }
    let current = read[i as usize];
    for b in Base::ALL {
        let next = backward_step(mt, bwt, b, interval);
        if next.is_empty() {
            continue;
        }
        if budget.allows_indels() {
            // Deletion from the read (reference base consumed, read index
            // unchanged).
            recur(mt, bwt, read, budget, i, z - 1, next, best);
        }
        if b == current {
            // Match (Algorithm 2 line 16): no cost.
            recur(mt, bwt, read, budget, i - 1, z, next, best);
        } else {
            // Mismatch (Algorithm 2 line 18): one difference.
            recur(mt, bwt, read, budget, i - 1, z - 1, next, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::suffix_array;
    use crate::tables::{CountTable, OccTable, SampledOcc};
    use crate::text::Text;
    use proptest::prelude::*;

    fn index(s: &str, d: usize) -> (Vec<usize>, Bwt, MarkerTable) {
        let t = Text::from_reference(&s.parse::<DnaSeq>().unwrap());
        let sa = suffix_array(&t);
        let bwt = Bwt::from_sa(&t, &sa);
        let count = CountTable::from_bwt(&bwt);
        let occ = OccTable::from_bwt(&bwt);
        let mt = MarkerTable::new(&count, &SampledOcc::from_occ(&occ, d));
        (sa, bwt, mt)
    }

    fn positions(sa: &[usize], hits: &[InexactHit]) -> Vec<usize> {
        let mut p: Vec<usize> = hits
            .iter()
            .flat_map(|h| h.interval.rows().map(|r| sa[r]))
            .collect();
        p.sort_unstable();
        p.dedup();
        p
    }

    #[test]
    fn exact_read_is_zero_diff_hit() {
        let (sa, bwt, mt) = index("TGCTA", 2);
        let read: DnaSeq = "CTA".parse().unwrap();
        let hits = search_inexact(&mt, &bwt, &read, EditBudget::substitutions_only(1));
        assert_eq!(hits[0].diffs, 0);
        assert!(positions(&sa, &hits[..1]).contains(&2));
    }

    #[test]
    fn single_substitution_recovered() {
        // Reference GATTACA; read GATGACA differs at position 3 (T→G).
        let (sa, bwt, mt) = index("GATTACA", 2);
        let read: DnaSeq = "GATGACA".parse().unwrap();
        assert!(search_inexact(&mt, &bwt, &read, EditBudget::substitutions_only(0)).is_empty());
        let hits = search_inexact(&mt, &bwt, &read, EditBudget::substitutions_only(1));
        assert!(!hits.is_empty());
        assert_eq!(positions(&sa, &hits), vec![0]);
        assert_eq!(hits[0].diffs, 1);
    }

    #[test]
    fn two_substitutions_need_z2() {
        let (_, bwt, mt) = index("GATTACAGATTACA", 4);
        let read: DnaSeq = "GCTTACG".parse().unwrap(); // two subs vs GATTACA prefix
        assert!(search_inexact(&mt, &bwt, &read, EditBudget::substitutions_only(1)).is_empty());
        let hits = search_inexact(&mt, &bwt, &read, EditBudget::substitutions_only(2));
        assert!(!hits.is_empty());
        assert_eq!(hits[0].diffs, 2);
    }

    #[test]
    fn deletion_from_read_recovered_with_indels() {
        // Reference GATTACA; read GATACA lacks one T.
        let (sa, bwt, mt) = index("GATTACA", 2);
        let read: DnaSeq = "GATACA".parse().unwrap();
        let hits = search_inexact(&mt, &bwt, &read, EditBudget::edits(1));
        assert!(positions(&sa, &hits).contains(&0));
    }

    #[test]
    fn insertion_in_read_recovered_with_indels() {
        // Reference GATACA; read GATTACA has an extra T.
        let (sa, bwt, mt) = index("GATACA", 2);
        let read: DnaSeq = "GATTACA".parse().unwrap();
        let hits = search_inexact(&mt, &bwt, &read, EditBudget::edits(1));
        assert!(positions(&sa, &hits).contains(&0));
    }

    #[test]
    fn substitutions_only_budget_rejects_indel_variant() {
        let (_, bwt, mt) = index("GATTACA", 2);
        let read: DnaSeq = "GATACA".parse().unwrap(); // needs a deletion
        let subs = search_inexact(&mt, &bwt, &read, EditBudget::substitutions_only(1));
        // No 1-substitution alignment of GATACA into GATTACA exists at
        // full read length.
        assert!(subs.iter().all(|h| h.diffs > 0));
        assert!(subs.is_empty());
    }

    #[test]
    fn hits_sorted_exact_first() {
        let (_, bwt, mt) = index("ACGTACGTACGT", 3);
        let read: DnaSeq = "ACGT".parse().unwrap();
        let hits = search_inexact(&mt, &bwt, &read, EditBudget::substitutions_only(1));
        assert!(!hits.is_empty());
        for w in hits.windows(2) {
            assert!(w[0].diffs <= w[1].diffs);
        }
        assert_eq!(hits[0].diffs, 0);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_budget_panics() {
        let _ = EditBudget::edits(9);
    }

    /// Brute-force oracle for substitution-only matching: positions where
    /// the read aligns with Hamming distance ≤ z.
    fn hamming_positions(reference: &DnaSeq, read: &DnaSeq, z: usize) -> Vec<usize> {
        if read.is_empty() || read.len() > reference.len() {
            return Vec::new();
        }
        (0..=reference.len() - read.len())
            .filter(|&i| {
                (0..read.len())
                    .filter(|&j| reference[i + j] != read[j])
                    .count()
                    <= z
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn substitution_search_matches_hamming_oracle(
            ref_bases in proptest::collection::vec(0u8..4, 4..80),
            read_bases in proptest::collection::vec(0u8..4, 3..8),
            z in 0u8..3,
        ) {
            let reference: DnaSeq = ref_bases.iter().map(|&r| Base::from_rank(r as usize)).collect();
            let read: DnaSeq = read_bases.iter().map(|&r| Base::from_rank(r as usize)).collect();
            let t = Text::from_reference(&reference);
            let sa = suffix_array(&t);
            let bwt = Bwt::from_sa(&t, &sa);
            let count = CountTable::from_bwt(&bwt);
            let occ = OccTable::from_bwt(&bwt);
            let mt = MarkerTable::new(&count, &SampledOcc::from_occ(&occ, 5));
            let hits = search_inexact(&mt, &bwt, &read, EditBudget::substitutions_only(z));
            let found = positions(&sa, &hits);
            // Positions past reference.len()-read.len() can appear when the
            // match runs into the sentinel; filter to valid starts.
            let found: Vec<usize> = found
                .into_iter()
                .filter(|&p| p + read.len() <= reference.len())
                .collect();
            prop_assert_eq!(found, hamming_positions(&reference, &read, z as usize));
        }
    }
}
