//! Mapping SA rows back to reference positions.
//!
//! The paper stores the full suffix array in memory next to BWT and MT
//! ("only BWT, Marker Table (MT), and SA will be stored in the memory").
//! We support that configuration plus the classic space-saving alternative
//! of sampling the SA and recovering un-sampled rows by LF-stepping — used
//! by the ablation benches to show the storage/latency trade-off.

use crate::bwt::Bwt;
use crate::search::SaInterval;
use crate::tables::{CountTable, OccTable};

/// Suffix-array storage: either the full array or a sampled subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuffixArraySamples {
    /// Every SA entry, indexed by row.
    Full(Vec<u32>),
    /// Entries whose *text position* is a multiple of the sampling rate,
    /// addressed by SA row (`u32::MAX` marks an unsampled row).
    Sampled {
        /// `values[row]` = SA value when sampled, `u32::MAX` otherwise.
        values: Vec<u32>,
        /// Sampling rate `s` (every `s`-th text position is kept).
        rate: u32,
    },
}

impl SuffixArraySamples {
    /// Keeps the full SA.
    ///
    /// Entries are stored as `u32`, and `u32::MAX` is reserved as the
    /// unsampled-row sentinel of the `Sampled` variant, so every text
    /// position must be strictly below `u32::MAX`. The index builder
    /// enforces this bound with a typed error
    /// ([`IndexBuildError`](crate::IndexBuildError)); the assert here is
    /// defence in depth against callers constructing samples directly.
    ///
    /// # Panics
    ///
    /// Panics if any SA entry is `>= u32::MAX`.
    pub fn full(sa: &[usize]) -> SuffixArraySamples {
        assert!(
            sa.len() <= u32::MAX as usize,
            "SA has {} rows; text positions must fit below u32::MAX",
            sa.len()
        );
        SuffixArraySamples::Full(sa.iter().map(|&v| v as u32).collect())
    }

    /// Samples the SA at text positions divisible by `rate`.
    ///
    /// The same `u32::MAX` position bound as [`SuffixArraySamples::full`]
    /// applies — a position equal to `u32::MAX` would be
    /// indistinguishable from the unsampled sentinel.
    ///
    /// # Panics
    ///
    /// Panics if `rate == 0` or any SA entry is `>= u32::MAX`.
    pub fn sampled(sa: &[usize], rate: u32) -> SuffixArraySamples {
        assert!(rate > 0, "SA sampling rate must be positive");
        assert!(
            sa.len() <= u32::MAX as usize,
            "SA has {} rows; text positions must fit below u32::MAX",
            sa.len()
        );
        let values = sa
            .iter()
            .map(|&v| {
                if v % rate as usize == 0 {
                    v as u32
                } else {
                    u32::MAX
                }
            })
            .collect();
        SuffixArraySamples::Sampled { values, rate }
    }

    /// Number of SA rows covered.
    pub fn len(&self) -> usize {
        match self {
            SuffixArraySamples::Full(v) => v.len(),
            SuffixArraySamples::Sampled { values, .. } => values.len(),
        }
    }

    /// SA storage always covers the sentinel row.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of storage used (Fig. 10a memory accounting).
    ///
    /// This mirrors the bytes [`io::save`](crate::io::save) actually
    /// writes for the SA table: 4 bytes per row for the full array, and
    /// 8 bytes — a `(row, value)` pair of `u32`s — per stored entry for
    /// the sampled form. The agreement is pinned by a serializer test.
    pub fn size_bytes(&self) -> usize {
        match self {
            SuffixArraySamples::Full(v) => v.len() * 4,
            SuffixArraySamples::Sampled { values, .. } => {
                values.iter().filter(|&&v| v != u32::MAX).count() * 8
            }
        }
    }

    /// The directly stored value for `row`, if present.
    fn stored(&self, row: usize) -> Option<u32> {
        match self {
            SuffixArraySamples::Full(v) => Some(v[row]),
            SuffixArraySamples::Sampled { values, .. } => {
                let v = values[row];
                (v != u32::MAX).then_some(v)
            }
        }
    }
}

/// Resolves every row of `interval` to a text position, LF-stepping from
/// unsampled rows when the SA is sampled. Positions are returned sorted
/// and deduplicated.
///
/// # Panics
///
/// Panics if the interval exceeds the number of SA rows.
pub fn locate(
    samples: &SuffixArraySamples,
    bwt: &Bwt,
    count: &CountTable,
    occ: &OccTable,
    interval: SaInterval,
) -> Vec<usize> {
    assert!(
        interval.high() as usize <= samples.len(),
        "interval {interval} exceeds SA rows {}",
        samples.len()
    );
    let mut out: Vec<usize> = interval
        .rows()
        .map(|row| resolve_row(samples, bwt, count, occ, row))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn resolve_row(
    samples: &SuffixArraySamples,
    bwt: &Bwt,
    count: &CountTable,
    occ: &OccTable,
    mut row: usize,
) -> usize {
    let mut steps = 0usize;
    loop {
        if let Some(v) = samples.stored(row) {
            return v as usize + steps;
        }
        row = lf_step(bwt, count, occ, row);
        steps += 1;
        debug_assert!(steps <= bwt.len(), "LF walk did not terminate");
    }
}

/// One LF-mapping step: the SA row of the suffix one position earlier in
/// the text.
fn lf_step(bwt: &Bwt, count: &CountTable, occ: &OccTable, row: usize) -> usize {
    let r = bwt.rank(row);
    if r == 0 {
        return 0; // the sentinel maps to row 0
    }
    let base = bioseq::Base::from_rank(r as usize - 1);
    count.get(base) as usize + occ.occ(base, row) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::suffix_array;
    use crate::tables::SampledOcc;
    use crate::text::Text;
    use bioseq::DnaSeq;
    use proptest::prelude::*;

    fn setup(s: &str) -> (Vec<usize>, Bwt, CountTable, OccTable) {
        let t = Text::from_reference(&s.parse::<DnaSeq>().unwrap());
        let sa = suffix_array(&t);
        let bwt = Bwt::from_sa(&t, &sa);
        let count = CountTable::from_bwt(&bwt);
        let occ = OccTable::from_bwt(&bwt);
        let _ = SampledOcc::from_occ(&occ, 4);
        (sa, bwt, count, occ)
    }

    #[test]
    fn full_storage_is_direct_lookup() {
        let (sa, bwt, count, occ) = setup("TGCTAACG");
        let samples = SuffixArraySamples::full(&sa);
        for (row, &entry) in sa.iter().enumerate() {
            let interval = SaInterval::new(row as u32, row as u32 + 1);
            assert_eq!(locate(&samples, &bwt, &count, &occ, interval), vec![entry]);
        }
    }

    #[test]
    fn sampled_storage_recovers_all_rows() {
        let (sa, bwt, count, occ) = setup("GATTACAGATTACAGGGTTTCCC");
        for rate in [1u32, 2, 3, 4, 8] {
            let samples = SuffixArraySamples::sampled(&sa, rate);
            for (row, &entry) in sa.iter().enumerate() {
                let interval = SaInterval::new(row as u32, row as u32 + 1);
                assert_eq!(
                    locate(&samples, &bwt, &count, &occ, interval),
                    vec![entry],
                    "rate {rate} row {row}"
                );
            }
        }
    }

    #[test]
    fn sampled_uses_less_space() {
        let (sa, ..) = setup(&"ACGT".repeat(64));
        let full = SuffixArraySamples::full(&sa);
        let sparse = SuffixArraySamples::sampled(&sa, 8);
        assert!(sparse.size_bytes() < full.size_bytes());
    }

    #[test]
    fn locate_interval_sorts_and_dedups() {
        let (sa, bwt, count, occ) = setup("ACGTACGTACGT");
        let samples = SuffixArraySamples::full(&sa);
        // Rows 0..4 in one interval: positions come back sorted.
        let pos = locate(&samples, &bwt, &count, &occ, SaInterval::new(0, 4));
        let mut sorted = pos.clone();
        sorted.sort_unstable();
        assert_eq!(pos, sorted);
    }

    #[test]
    #[should_panic(expected = "exceeds SA rows")]
    fn out_of_range_interval_panics() {
        let (sa, bwt, count, occ) = setup("ACGT");
        let samples = SuffixArraySamples::full(&sa);
        let _ = locate(&samples, &bwt, &count, &occ, SaInterval::new(0, 99));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let (sa, ..) = setup("ACGT");
        let _ = SuffixArraySamples::sampled(&sa, 0);
    }

    proptest! {
        #[test]
        fn sampled_equals_full(
            bases in proptest::collection::vec(0u8..4, 1..120),
            rate in 1u32..10,
        ) {
            let seq: DnaSeq = bases.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let t = Text::from_reference(&seq);
            let sa = suffix_array(&t);
            let bwt = Bwt::from_sa(&t, &sa);
            let count = CountTable::from_bwt(&bwt);
            let occ = OccTable::from_bwt(&bwt);
            let full = SuffixArraySamples::full(&sa);
            let sparse = SuffixArraySamples::sampled(&sa, rate);
            let interval = SaInterval::full(sa.len());
            prop_assert_eq!(
                locate(&full, &bwt, &count, &occ, interval),
                locate(&sparse, &bwt, &count, &occ, interval)
            );
        }
    }
}
