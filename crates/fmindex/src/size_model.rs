//! Analytic index-size model.
//!
//! Paper §III: after pre-computation "only BWT, Marker Table (MT), and SA
//! will be stored in the memory, which will consume ∼12GB of memory
//! space" for the 3.2 Gbp human genome. Building that index is out of
//! reach here, but its size is pure arithmetic — this model computes the
//! footprint of each table for any genome length and configuration, and
//! the test suite checks the paper's 12 GB claim directly.
//!
//! The model is also the scaling bridge for the laptop-scale experiments:
//! `FmIndex::size_bytes()` agrees with it exactly on indexes we *can*
//! build (see the tests), so extrapolating it to 3.2 Gbp is sound.

/// Bytes-per-table breakdown of a stored FM-index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexFootprint {
    /// 2-bit packed BWT.
    pub bwt_bytes: usize,
    /// Marker table: 4 × u32 per bucket.
    pub marker_bytes: usize,
    /// Suffix array storage.
    pub sa_bytes: usize,
}

impl IndexFootprint {
    /// Total bytes.
    pub fn total_bytes(&self) -> usize {
        self.bwt_bytes + self.marker_bytes + self.sa_bytes
    }

    /// Total in GiB.
    pub fn total_gib(&self) -> f64 {
        self.total_bytes() as f64 / (1u64 << 30) as f64
    }
}

/// Computes the stored-table footprint for a reference of `genome_len`
/// bases with Occ bucket width `d` and a suffix array sampled every
/// `sa_rate` text positions (`1` = full SA, the paper's configuration).
///
/// # Panics
///
/// Panics if `d == 0` or `sa_rate == 0`.
///
/// # Examples
///
/// ```
/// use fmindex::size_model::footprint;
///
/// // The paper's configuration at human-genome scale: ~12 GB.
/// let hg = footprint(3_200_000_000, 128, 1);
/// assert!((11.0..15.0).contains(&hg.total_gib()));
/// ```
pub fn footprint(genome_len: usize, d: usize, sa_rate: usize) -> IndexFootprint {
    assert!(d > 0, "bucket width must be positive");
    assert!(sa_rate > 0, "SA sampling rate must be positive");
    let text_len = genome_len + 1; // sentinel
    let bwt_bytes = text_len.div_ceil(4);
    let buckets = text_len / d + 1;
    let marker_bytes = buckets * 4 * std::mem::size_of::<u32>();
    let sa_bytes = if sa_rate == 1 {
        text_len * 4
    } else {
        // One (row, value) pair of u32s per stored entry — the layout
        // io::save writes and SuffixArraySamples::size_bytes() charges.
        // Stored entries are the text positions divisible by sa_rate in
        // [0, text_len), i.e. ceil(text_len / sa_rate) of them.
        text_len.div_ceil(sa_rate) * 8
    };
    IndexFootprint {
        bwt_bytes,
        marker_bytes,
        sa_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FmIndex, SaStorage};
    use bioseq::{Base, DnaSeq};

    #[test]
    fn paper_twelve_gigabyte_claim() {
        // 3.2 Gbp, d = 128 (one word line), full SA — the paper's setup.
        let hg19 = footprint(3_200_000_000, 128, 1);
        let gib = hg19.total_gib();
        assert!(
            (11.0..15.0).contains(&gib),
            "paper claims ~12 GB; model gives {gib:.1} GiB"
        );
        // The SA dominates (4 bytes/base vs 2 bits/base for BWT).
        assert!(hg19.sa_bytes > hg19.bwt_bytes);
        assert!(hg19.bwt_bytes > hg19.marker_bytes);
    }

    #[test]
    fn sampling_the_occ_table_reduces_it_by_d() {
        // Paper Fig. 2: "the table size is reduced by a factor of d".
        let full = footprint(1_000_000, 1, 1);
        let sampled = footprint(1_000_000, 128, 1);
        let ratio = full.marker_bytes as f64 / sampled.marker_bytes as f64;
        assert!((ratio - 128.0).abs() < 1.0, "reduction factor {ratio:.1}");
    }

    #[test]
    fn model_matches_built_index_exactly() {
        let reference: DnaSeq = (0..5_000)
            .map(|i| Base::from_rank((i * 7 + 1) % 4))
            .collect();
        for (d, rate) in [(128usize, 1u32), (64, 1), (128, 8)] {
            let index = FmIndex::builder()
                .bucket_width(d)
                .sa_storage(if rate == 1 {
                    SaStorage::Full
                } else {
                    SaStorage::Sampled(rate)
                })
                .build(&reference);
            let model = footprint(reference.len(), d, rate as usize);
            assert_eq!(
                index.size_bytes(),
                model.total_bytes(),
                "model mismatch at d={d} rate={rate}"
            );
        }
    }

    #[test]
    fn sa_sampling_shrinks_the_footprint() {
        let full = footprint(10_000_000, 128, 1);
        let sampled = footprint(10_000_000, 128, 32);
        // 32× fewer entries at twice the width (8-byte pairs vs 4-byte
        // values) nets a 16× saving.
        assert!(sampled.sa_bytes <= full.sa_bytes / 16 + 8);
        assert!(sampled.total_bytes() < full.total_bytes());
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_rejected() {
        let _ = footprint(1_000, 0, 1);
    }
}
