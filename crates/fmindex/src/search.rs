//! Exact backward search (paper §II and Algorithm 1).

use std::fmt;

use bioseq::DnaSeq;

use crate::bwt::Bwt;
use crate::tables::MarkerTable;

/// A suffix-array interval `[low, high)` — "the SA interval (low, high)
/// covers a range of indices where the suffixes have the same prefix".
///
/// The interval is non-empty (a match exists) when `low < high`; the number
/// of occurrences is `high − low`.
///
/// # Examples
///
/// ```
/// use fmindex::SaInterval;
///
/// let hit = SaInterval::new(2, 3);
/// assert!(!hit.is_empty());
/// assert_eq!(hit.count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SaInterval {
    low: u32,
    high: u32,
}

impl SaInterval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn new(low: u32, high: u32) -> SaInterval {
        assert!(low <= high, "SA interval bounds inverted: {low} > {high}");
        SaInterval { low, high }
    }

    /// The full interval `[0, n)` covering every suffix of a text of length
    /// `n` — the initialisation of Algorithm 1 ("index-low and index-high
    /// boundaries are initialized to … 0 and N").
    ///
    /// Interval bounds are `u32`, so `text_len` must not exceed
    /// `u32::MAX` rows. The index builder guarantees this
    /// ([`FmIndex::MAX_REFERENCE_LEN`](crate::FmIndex::MAX_REFERENCE_LEN));
    /// the assert catches direct callers with an over-long text.
    ///
    /// # Panics
    ///
    /// Panics if `text_len > u32::MAX`.
    pub fn full(text_len: usize) -> SaInterval {
        assert!(
            text_len <= u32::MAX as usize,
            "text of {text_len} rows exceeds the u32 interval bound"
        );
        SaInterval {
            low: 0,
            high: text_len as u32,
        }
    }

    /// Lower bound (inclusive).
    pub fn low(&self) -> u32 {
        self.low
    }

    /// Upper bound (exclusive).
    pub fn high(&self) -> u32 {
        self.high
    }

    /// `true` when no suffix matches (`low ≥ high` — the paper's failure
    /// condition).
    pub fn is_empty(&self) -> bool {
        self.low >= self.high
    }

    /// Number of matching suffixes.
    pub fn count(&self) -> u32 {
        self.high - self.low
    }

    /// Iterates over the suffix-array rows in the interval.
    pub fn rows(&self) -> impl Iterator<Item = usize> {
        (self.low as usize)..(self.high as usize)
    }
}

impl fmt::Display for SaInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.low, self.high)
    }
}

/// One step of backward search: narrows `interval` by prepending `nt`,
/// using two `LFM` evaluations (one per bound). This is the loop body of
/// Algorithm 1.
pub fn backward_step(
    mt: &MarkerTable,
    bwt: &Bwt,
    nt: bioseq::Base,
    interval: SaInterval,
) -> SaInterval {
    let low = mt.lfm(bwt, nt, interval.low() as usize);
    let high = mt.lfm(bwt, nt, interval.high() as usize);
    // LFM is monotone in `id`, so low ≤ high always holds.
    SaInterval::new(low, high)
}

/// Runs full backward search of `read` (right-to-left, "starting from the
/// rightmost nucleotide") over a BWT + Marker Table.
///
/// Returns the final interval; an empty interval means no exact match. The
/// search stops early once the interval empties (the paper's `low ≥ high`
/// failure exit).
pub fn backward_search(mt: &MarkerTable, bwt: &Bwt, read: &DnaSeq) -> SaInterval {
    let mut interval = SaInterval::full(bwt.len());
    for &nt in read.iter().rev() {
        interval = backward_step(mt, bwt, nt, interval);
        if interval.is_empty() {
            return interval;
        }
    }
    interval
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::suffix_array;
    use crate::tables::{CountTable, OccTable, SampledOcc};
    use crate::text::Text;
    use bioseq::Base;
    use proptest::prelude::*;

    fn index(s: &str, d: usize) -> (Text, Vec<usize>, Bwt, MarkerTable) {
        let t = Text::from_reference(&s.parse::<DnaSeq>().unwrap());
        let sa = suffix_array(&t);
        let bwt = Bwt::from_sa(&t, &sa);
        let count = CountTable::from_bwt(&bwt);
        let occ = OccTable::from_bwt(&bwt);
        let mt = MarkerTable::new(&count, &SampledOcc::from_occ(&occ, d));
        (t, sa, bwt, mt)
    }

    #[test]
    fn paper_example_cta_in_tgcta() {
        let (_, sa, bwt, mt) = index("TGCTA", 2);
        let read: DnaSeq = "CTA".parse().unwrap();
        let hit = backward_search(&mt, &bwt, &read);
        assert!(!hit.is_empty());
        assert_eq!(hit.count(), 1);
        let positions: Vec<usize> = hit.rows().map(|r| sa[r]).collect();
        assert_eq!(positions, vec![2]);
    }

    #[test]
    fn absent_read_fails_with_low_ge_high() {
        let (_, _, bwt, mt) = index("TGCTA", 2);
        let read: DnaSeq = "AAA".parse().unwrap();
        assert!(backward_search(&mt, &bwt, &read).is_empty());
    }

    #[test]
    fn repeated_pattern_counts_occurrences() {
        let (_, sa, bwt, mt) = index("ACGTACGTACGT", 3);
        let read: DnaSeq = "ACGT".parse().unwrap();
        let hit = backward_search(&mt, &bwt, &read);
        assert_eq!(hit.count(), 3);
        let mut positions: Vec<usize> = hit.rows().map(|r| sa[r]).collect();
        positions.sort_unstable();
        assert_eq!(positions, vec![0, 4, 8]);
    }

    #[test]
    fn empty_read_matches_everywhere() {
        let (t, _, bwt, mt) = index("ACGT", 2);
        let hit = backward_search(&mt, &bwt, &DnaSeq::new());
        assert_eq!(hit.count() as usize, t.len());
    }

    #[test]
    fn full_reference_matches_once_at_origin() {
        let (_, sa, bwt, mt) = index("GATTACA", 2);
        let read: DnaSeq = "GATTACA".parse().unwrap();
        let hit = backward_search(&mt, &bwt, &read);
        assert_eq!(hit.count(), 1);
        assert_eq!(sa[hit.low() as usize], 0);
    }

    #[test]
    fn interval_helpers() {
        let full = SaInterval::full(10);
        assert_eq!((full.low(), full.high()), (0, 10));
        assert!(SaInterval::new(3, 3).is_empty());
        assert_eq!(
            SaInterval::new(2, 5).rows().collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_interval_panics() {
        let _ = SaInterval::new(5, 2);
    }

    /// Oracle: positions found by backward search must equal positions
    /// found by scanning the reference directly.
    fn scan_positions(reference: &DnaSeq, read: &DnaSeq) -> Vec<usize> {
        if read.is_empty() || read.len() > reference.len() {
            return Vec::new();
        }
        (0..=reference.len() - read.len())
            .filter(|&i| (0..read.len()).all(|j| reference[i + j] == read[j]))
            .collect()
    }

    proptest! {
        #[test]
        fn backward_search_matches_scan(
            ref_bases in proptest::collection::vec(0u8..4, 1..200),
            read_bases in proptest::collection::vec(0u8..4, 1..12),
            d in 1usize..20,
        ) {
            let reference: DnaSeq = ref_bases.iter().map(|&r| Base::from_rank(r as usize)).collect();
            let read: DnaSeq = read_bases.iter().map(|&r| Base::from_rank(r as usize)).collect();
            let (_, sa, bwt, mt) = {
                let t = Text::from_reference(&reference);
                let sa = suffix_array(&t);
                let bwt = Bwt::from_sa(&t, &sa);
                let count = CountTable::from_bwt(&bwt);
                let occ = OccTable::from_bwt(&bwt);
                let mt = MarkerTable::new(&count, &SampledOcc::from_occ(&occ, d));
                (t, sa, bwt, mt)
            };
            let hit = backward_search(&mt, &bwt, &read);
            let mut found: Vec<usize> = hit.rows().map(|r| sa[r]).collect();
            found.sort_unstable();
            prop_assert_eq!(found, scan_positions(&reference, &read));
        }

        #[test]
        fn sampled_search_agrees_across_bucket_widths(
            ref_bases in proptest::collection::vec(0u8..4, 1..150),
            read_bases in proptest::collection::vec(0u8..4, 1..10),
        ) {
            let reference: DnaSeq = ref_bases.iter().map(|&r| Base::from_rank(r as usize)).collect();
            let read: DnaSeq = read_bases.iter().map(|&r| Base::from_rank(r as usize)).collect();
            let t = Text::from_reference(&reference);
            let sa = suffix_array(&t);
            let bwt = Bwt::from_sa(&t, &sa);
            let count = CountTable::from_bwt(&bwt);
            let occ = OccTable::from_bwt(&bwt);
            let mut results = Vec::new();
            for d in [1usize, 2, 7, 128] {
                let mt = MarkerTable::new(&count, &SampledOcc::from_occ(&occ, d));
                results.push(backward_search(&mt, &bwt, &read));
            }
            prop_assert!(results.windows(2).all(|w| w[0] == w[1]));
        }
    }
}
