//! Alignment scoring parameters.

/// Scoring scheme for the dynamic-programming aligners.
///
/// Linear-gap aligners use `gap_open` as the per-base gap cost and ignore
/// `gap_extend`; the affine aligner charges `gap_open + gap_extend` for
/// the first base of a gap and `gap_extend` for each further base.
///
/// # Examples
///
/// ```
/// use swalign::Scoring;
///
/// let s = Scoring::new(2, -1, -3, -1);
/// assert_eq!(s.match_score, 2);
/// assert_eq!(s.score_pair(true), 2);
/// assert_eq!(s.score_pair(false), -1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scoring {
    /// Score awarded for a matching base pair (positive).
    pub match_score: i16,
    /// Score for a mismatching pair (negative).
    pub mismatch: i16,
    /// Cost of opening a gap (negative; per-base cost for linear-gap
    /// aligners).
    pub gap_open: i16,
    /// Cost of extending a gap by one base (negative; affine aligner
    /// only).
    pub gap_extend: i16,
}

impl Scoring {
    /// Creates a scheme, validating the sign conventions.
    ///
    /// # Panics
    ///
    /// Panics if `match_score <= 0`, or any penalty is positive.
    pub fn new(match_score: i16, mismatch: i16, gap_open: i16, gap_extend: i16) -> Scoring {
        assert!(match_score > 0, "match score must be positive");
        assert!(mismatch <= 0, "mismatch penalty must be non-positive");
        assert!(gap_open <= 0, "gap-open penalty must be non-positive");
        assert!(gap_extend <= 0, "gap-extend penalty must be non-positive");
        Scoring {
            match_score,
            mismatch,
            gap_open,
            gap_extend,
        }
    }

    /// The score of aligning one pair of bases.
    #[inline]
    pub fn score_pair(&self, is_match: bool) -> i32 {
        if is_match {
            self.match_score as i32
        } else {
            self.mismatch as i32
        }
    }
}

impl Default for Scoring {
    /// The classic `+1 / −1 / −2` scheme with `−1` gap extension.
    fn default() -> Scoring {
        Scoring::new(1, -1, -2, -1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scheme() {
        let s = Scoring::default();
        assert_eq!(
            (s.match_score, s.mismatch, s.gap_open, s.gap_extend),
            (1, -1, -2, -1)
        );
    }

    #[test]
    #[should_panic(expected = "match score must be positive")]
    fn zero_match_rejected() {
        let _ = Scoring::new(0, -1, -1, -1);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn positive_penalty_rejected() {
        let _ = Scoring::new(1, 1, -1, -1);
    }

    #[test]
    fn score_pair_dispatch() {
        let s = Scoring::new(3, -2, -5, -1);
        assert_eq!(s.score_pair(true), 3);
        assert_eq!(s.score_pair(false), -2);
    }
}
