//! Dynamic-programming sequence alignment — the O(n·m) baseline class.
//!
//! The paper contrasts its O(m) FM-index search with "dynamic programming
//! algorithms such as Smith-Waterman (SW) with O(nm) complexity" — the
//! algorithm family behind the Darwin, ReCAM and RaceLogic accelerators it
//! compares against. This crate implements that baseline class in
//! software so the comparison is executable, not just quoted:
//!
//! * [`needleman_wunsch`] — global alignment;
//! * [`smith_waterman`] — local alignment (the SW of the paper);
//! * [`banded_global`] — banded global alignment for bounded edit distance;
//! * [`banded_edit_distance`] — banded unit-cost Levenshtein distance;
//! * [`affine_local`] — Gotoh local alignment with affine gap penalties.
//!
//! All return an [`Alignment`] with score, coordinates and a [`Cigar`].
//!
//! # Examples
//!
//! ```
//! use bioseq::DnaSeq;
//! use swalign::{smith_waterman, Scoring};
//!
//! # fn main() -> Result<(), bioseq::ParseSeqError> {
//! let reference: DnaSeq = "ACGTGATTACAGGT".parse()?;
//! let read: DnaSeq = "GATTACA".parse()?;
//! let aln = smith_waterman(&reference, &read, Scoring::default());
//! assert_eq!(aln.ref_start, 4);
//! assert_eq!(aln.score, 7 * i32::from(Scoring::default().match_score));
//! assert_eq!(aln.cigar.to_string(), "7M");
//! # Ok(())
//! # }
//! ```

mod cigar;
mod dp;
mod score;

pub use cigar::{Cigar, CigarOp};
pub use dp::{
    affine_local, banded_edit_distance, banded_global, needleman_wunsch, smith_waterman, Alignment,
};
pub use score::Scoring;
