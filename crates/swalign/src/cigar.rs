//! CIGAR strings describing alignments.

use std::fmt;

/// One alignment operation, SAM-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CigarOp {
    /// `M`: aligned pair (match or mismatch).
    Match,
    /// `I`: base present in the read but not the reference.
    Insertion,
    /// `D`: base present in the reference but not the read.
    Deletion,
}

impl CigarOp {
    /// SAM single-letter code.
    pub fn code(self) -> char {
        match self {
            CigarOp::Match => 'M',
            CigarOp::Insertion => 'I',
            CigarOp::Deletion => 'D',
        }
    }

    /// Whether the op consumes a read base.
    pub fn consumes_read(self) -> bool {
        !matches!(self, CigarOp::Deletion)
    }

    /// Whether the op consumes a reference base.
    pub fn consumes_ref(self) -> bool {
        !matches!(self, CigarOp::Insertion)
    }
}

/// A run-length-encoded sequence of alignment operations.
///
/// # Examples
///
/// ```
/// use swalign::{Cigar, CigarOp};
///
/// let mut c = Cigar::new();
/// c.push(CigarOp::Match);
/// c.push(CigarOp::Match);
/// c.push(CigarOp::Deletion);
/// c.push(CigarOp::Match);
/// assert_eq!(c.to_string(), "2M1D1M");
/// assert_eq!(c.read_len(), 3);
/// assert_eq!(c.ref_len(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cigar {
    runs: Vec<(u32, CigarOp)>,
}

impl Cigar {
    /// Creates an empty CIGAR.
    pub fn new() -> Cigar {
        Cigar { runs: Vec::new() }
    }

    /// Appends one operation, merging with the previous run when equal.
    pub fn push(&mut self, op: CigarOp) {
        match self.runs.last_mut() {
            Some((count, last)) if *last == op => *count += 1,
            _ => self.runs.push((1, op)),
        }
    }

    /// The run-length-encoded operations.
    pub fn runs(&self) -> &[(u32, CigarOp)] {
        &self.runs
    }

    /// `true` when no operations are recorded.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of read bases consumed.
    pub fn read_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|(_, op)| op.consumes_read())
            .map(|&(n, _)| n as usize)
            .sum()
    }

    /// Number of reference bases consumed.
    pub fn ref_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|(_, op)| op.consumes_ref())
            .map(|&(n, _)| n as usize)
            .sum()
    }

    /// Total number of edit operations (insertions + deletions); `M` runs
    /// may still hide substitutions, which the caller counts separately.
    pub fn indel_count(&self) -> usize {
        self.runs
            .iter()
            .filter(|(_, op)| !matches!(op, CigarOp::Match))
            .map(|&(n, _)| n as usize)
            .sum()
    }

    /// Reverses the operation order in place (used when a traceback is
    /// collected back-to-front).
    pub fn reverse(&mut self) {
        self.runs.reverse();
    }
}

impl fmt::Display for Cigar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.runs.is_empty() {
            return f.write_str("*");
        }
        for &(n, op) in &self.runs {
            write!(f, "{}{}", n, op.code())?;
        }
        Ok(())
    }
}

impl FromIterator<CigarOp> for Cigar {
    fn from_iter<I: IntoIterator<Item = CigarOp>>(iter: I) -> Self {
        let mut c = Cigar::new();
        for op in iter {
            c.push(op);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_length_merging() {
        let c: Cigar = [
            CigarOp::Match,
            CigarOp::Match,
            CigarOp::Insertion,
            CigarOp::Match,
        ]
        .into_iter()
        .collect();
        assert_eq!(c.runs().len(), 3);
        assert_eq!(c.to_string(), "2M1I1M");
    }

    #[test]
    fn lengths_respect_consumption() {
        let c: Cigar = [
            CigarOp::Match,
            CigarOp::Insertion,
            CigarOp::Deletion,
            CigarOp::Deletion,
        ]
        .into_iter()
        .collect();
        assert_eq!(c.read_len(), 2); // M + I
        assert_eq!(c.ref_len(), 3); // M + 2D
        assert_eq!(c.indel_count(), 3);
    }

    #[test]
    fn empty_displays_star() {
        assert_eq!(Cigar::new().to_string(), "*");
        assert!(Cigar::new().is_empty());
    }

    #[test]
    fn reverse_reverses_runs() {
        let mut c: Cigar = [CigarOp::Deletion, CigarOp::Match, CigarOp::Match]
            .into_iter()
            .collect();
        c.reverse();
        assert_eq!(c.to_string(), "2M1D");
    }

    #[test]
    fn op_codes() {
        assert_eq!(CigarOp::Match.code(), 'M');
        assert_eq!(CigarOp::Insertion.code(), 'I');
        assert_eq!(CigarOp::Deletion.code(), 'D');
    }
}
