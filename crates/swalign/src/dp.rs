//! The dynamic-programming aligners.

use bioseq::DnaSeq;

use crate::cigar::{Cigar, CigarOp};
use crate::score::Scoring;

/// The result of a pairwise alignment.
///
/// Coordinates are half-open (`start .. end`) into the reference and the
/// read respectively; for global alignments they span both sequences
/// entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Total alignment score under the chosen [`Scoring`].
    pub score: i32,
    /// First aligned reference position.
    pub ref_start: usize,
    /// One past the last aligned reference position.
    pub ref_end: usize,
    /// First aligned read position.
    pub read_start: usize,
    /// One past the last aligned read position.
    pub read_end: usize,
    /// The operation string.
    pub cigar: Cigar,
}

impl Alignment {
    /// Number of reference bases covered.
    pub fn ref_span(&self) -> usize {
        self.ref_end - self.ref_start
    }

    /// Number of read bases covered.
    pub fn read_span(&self) -> usize {
        self.read_end - self.read_start
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Stop,
    Diag,
    Up,   // gap in read (deletion from read / ref base consumed)
    Left, // gap in reference (insertion in read)
}

/// Global alignment (Needleman–Wunsch) with linear gap cost
/// (`scoring.gap_open` per base).
///
/// # Examples
///
/// ```
/// use bioseq::DnaSeq;
/// use swalign::{needleman_wunsch, Scoring};
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let a: DnaSeq = "GATTACA".parse()?;
/// let b: DnaSeq = "GATACA".parse()?;
/// let aln = needleman_wunsch(&a, &b, Scoring::default());
/// assert_eq!(aln.cigar.indel_count(), 1); // one deleted T
/// assert_eq!(aln.score, 6 - 2);
/// # Ok(())
/// # }
/// ```
pub fn needleman_wunsch(reference: &DnaSeq, read: &DnaSeq, scoring: Scoring) -> Alignment {
    let n = reference.len();
    let m = read.len();
    let gap = scoring.gap_open as i32;
    let width = m + 1;
    let mut score = vec![0i32; (n + 1) * width];
    let mut dir = vec![Dir::Stop; (n + 1) * width];
    for j in 1..=m {
        score[j] = j as i32 * gap;
        dir[j] = Dir::Left;
    }
    for i in 1..=n {
        score[i * width] = i as i32 * gap;
        dir[i * width] = Dir::Up;
    }
    for i in 1..=n {
        for j in 1..=m {
            let diag = score[(i - 1) * width + j - 1]
                + scoring.score_pair(reference[i - 1] == read[j - 1]);
            let up = score[(i - 1) * width + j] + gap;
            let left = score[i * width + j - 1] + gap;
            let (best, d) = if diag >= up && diag >= left {
                (diag, Dir::Diag)
            } else if up >= left {
                (up, Dir::Up)
            } else {
                (left, Dir::Left)
            };
            score[i * width + j] = best;
            dir[i * width + j] = d;
        }
    }
    let cigar = traceback(&dir, width, n, m, |_, _| false);
    Alignment {
        score: score[n * width + m],
        ref_start: 0,
        ref_end: n,
        read_start: 0,
        read_end: m,
        cigar,
    }
}

/// Local alignment (Smith–Waterman) with linear gap cost — the O(n·m)
/// algorithm the paper's SW-based comparison platforms accelerate.
///
/// Returns the best-scoring local alignment; for an all-mismatch pair the
/// result is an empty alignment with score 0.
pub fn smith_waterman(reference: &DnaSeq, read: &DnaSeq, scoring: Scoring) -> Alignment {
    let n = reference.len();
    let m = read.len();
    let gap = scoring.gap_open as i32;
    let width = m + 1;
    let mut score = vec![0i32; (n + 1) * width];
    let mut dir = vec![Dir::Stop; (n + 1) * width];
    let mut best = (0i32, 0usize, 0usize);
    for i in 1..=n {
        for j in 1..=m {
            let diag = score[(i - 1) * width + j - 1]
                + scoring.score_pair(reference[i - 1] == read[j - 1]);
            let up = score[(i - 1) * width + j] + gap;
            let left = score[i * width + j - 1] + gap;
            let (mut cell, mut d) = if diag >= up && diag >= left {
                (diag, Dir::Diag)
            } else if up >= left {
                (up, Dir::Up)
            } else {
                (left, Dir::Left)
            };
            if cell <= 0 {
                cell = 0;
                d = Dir::Stop;
            }
            score[i * width + j] = cell;
            dir[i * width + j] = d;
            if cell > best.0 {
                best = (cell, i, j);
            }
        }
    }
    let (best_score, bi, bj) = best;
    let mut cigar = Cigar::new();
    let (mut i, mut j) = (bi, bj);
    while dir[i * width + j] != Dir::Stop {
        match dir[i * width + j] {
            Dir::Diag => {
                cigar.push(CigarOp::Match);
                i -= 1;
                j -= 1;
            }
            Dir::Up => {
                cigar.push(CigarOp::Deletion);
                i -= 1;
            }
            Dir::Left => {
                cigar.push(CigarOp::Insertion);
                j -= 1;
            }
            Dir::Stop => unreachable!(),
        }
    }
    cigar.reverse();
    Alignment {
        score: best_score,
        ref_start: i,
        ref_end: bi,
        read_start: j,
        read_end: bj,
        cigar,
    }
}

/// Banded global alignment: like [`needleman_wunsch`] but only cells with
/// `|i − j| ≤ band` are filled, reducing work to O((n + m)·band).
///
/// Returns `None` when `|n − m| > band` (the optimum cannot lie inside
/// the band).
pub fn banded_global(
    reference: &DnaSeq,
    read: &DnaSeq,
    scoring: Scoring,
    band: usize,
) -> Option<Alignment> {
    let n = reference.len();
    let m = read.len();
    if n.abs_diff(m) > band {
        return None;
    }
    let gap = scoring.gap_open as i32;
    let width = m + 1;
    const NEG: i32 = i32::MIN / 4;
    let mut score = vec![NEG; (n + 1) * width];
    let mut dir = vec![Dir::Stop; (n + 1) * width];
    score[0] = 0;
    for j in 1..=m.min(band) {
        score[j] = j as i32 * gap;
        dir[j] = Dir::Left;
    }
    for i in 1..=n.min(band) {
        score[i * width] = i as i32 * gap;
        dir[i * width] = Dir::Up;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        for j in lo..=hi {
            let diag = score[(i - 1) * width + j - 1]
                + scoring.score_pair(reference[i - 1] == read[j - 1]);
            let up = score[(i - 1) * width + j].saturating_add(gap);
            let left = score[i * width + j - 1].saturating_add(gap);
            let (best, d) = if diag >= up && diag >= left {
                (diag, Dir::Diag)
            } else if up >= left {
                (up, Dir::Up)
            } else {
                (left, Dir::Left)
            };
            score[i * width + j] = best;
            dir[i * width + j] = d;
        }
    }
    let cigar = traceback(&dir, width, n, m, |_, _| false);
    Some(Alignment {
        score: score[n * width + m],
        ref_start: 0,
        ref_end: n,
        read_start: 0,
        read_end: m,
        cigar,
    })
}

/// Banded unit-cost edit (Levenshtein) distance.
///
/// Fills only cells with `|i − j| ≤ band`, so the cost is
/// O((n + m)·band). Returns `Some(d)` when the edit distance `d` is at
/// most `band`, `None` otherwise — outside the band the exact distance
/// is unknown, only that it exceeds `band`.
///
/// # Examples
///
/// ```
/// use swalign::banded_edit_distance;
///
/// # fn main() -> Result<(), bioseq::ParseSeqError> {
/// let a = "GATTACA".parse()?;
/// let b = "GATACA".parse()?;
/// assert_eq!(banded_edit_distance(&a, &b, 2), Some(1));
/// assert_eq!(banded_edit_distance(&a, &"TTTTTTT".parse()?, 2), None);
/// # Ok(())
/// # }
/// ```
pub fn banded_edit_distance(a: &DnaSeq, b: &DnaSeq, band: usize) -> Option<u32> {
    let n = a.len();
    let m = b.len();
    if n.abs_diff(m) > band {
        return None;
    }
    const INF: u32 = u32::MAX / 2;
    let width = m + 1;
    let mut dist = vec![INF; (n + 1) * width];
    dist[0] = 0;
    for (j, cell) in dist.iter_mut().enumerate().take(m.min(band) + 1).skip(1) {
        *cell = j as u32;
    }
    for i in 1..=n {
        if i <= band {
            dist[i * width] = i as u32;
        }
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        for j in lo..=hi {
            let sub = dist[(i - 1) * width + j - 1] + u32::from(a[i - 1] != b[j - 1]);
            let del = dist[(i - 1) * width + j].saturating_add(1);
            let ins = dist[i * width + j - 1].saturating_add(1);
            dist[i * width + j] = sub.min(del).min(ins);
        }
    }
    let d = dist[n * width + m];
    (d as usize <= band).then_some(d)
}

/// Local alignment with affine gap penalties (Gotoh): a gap of length `k`
/// costs `gap_open + k · gap_extend`.
pub fn affine_local(reference: &DnaSeq, read: &DnaSeq, scoring: Scoring) -> Alignment {
    let n = reference.len();
    let m = read.len();
    let open = scoring.gap_open as i32 + scoring.gap_extend as i32;
    let extend = scoring.gap_extend as i32;
    let width = m + 1;
    const NEG: i32 = i32::MIN / 4;
    // h: best ending in match/mismatch (or 0); e: gap in reference (Left);
    // f: gap in read (Up).
    let mut h = vec![0i32; (n + 1) * width];
    let mut e = vec![NEG; (n + 1) * width];
    let mut f = vec![NEG; (n + 1) * width];
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        H,
        E,
        F,
    }
    let mut from_h = vec![Dir::Stop; (n + 1) * width];
    let mut e_open = vec![true; (n + 1) * width];
    let mut f_open = vec![true; (n + 1) * width];
    let mut best = (0i32, 0usize, 0usize);
    for i in 1..=n {
        for j in 1..=m {
            let idx = i * width + j;
            let e_ext = e[idx - 1].saturating_add(extend);
            let e_opn = h[idx - 1].saturating_add(open);
            if e_opn >= e_ext {
                e[idx] = e_opn;
                e_open[idx] = true;
            } else {
                e[idx] = e_ext;
                e_open[idx] = false;
            }
            let f_ext = f[idx - width].saturating_add(extend);
            let f_opn = h[idx - width].saturating_add(open);
            if f_opn >= f_ext {
                f[idx] = f_opn;
                f_open[idx] = true;
            } else {
                f[idx] = f_ext;
                f_open[idx] = false;
            }
            let diag = h[idx - width - 1] + scoring.score_pair(reference[i - 1] == read[j - 1]);
            let (mut cell, mut d) = (diag, Dir::Diag);
            if e[idx] > cell {
                cell = e[idx];
                d = Dir::Left;
            }
            if f[idx] > cell {
                cell = f[idx];
                d = Dir::Up;
            }
            if cell <= 0 {
                cell = 0;
                d = Dir::Stop;
            }
            h[idx] = cell;
            from_h[idx] = d;
            if cell > best.0 {
                best = (cell, i, j);
            }
        }
    }
    // Traceback through the three-state machine.
    let (best_score, bi, bj) = best;
    let mut cigar = Cigar::new();
    let (mut i, mut j) = (bi, bj);
    let mut state = State::H;
    loop {
        let idx = i * width + j;
        match state {
            State::H => match from_h[idx] {
                Dir::Stop => break,
                Dir::Diag => {
                    cigar.push(CigarOp::Match);
                    i -= 1;
                    j -= 1;
                }
                Dir::Left => state = State::E,
                Dir::Up => state = State::F,
            },
            State::E => {
                cigar.push(CigarOp::Insertion);
                let opened = e_open[idx];
                j -= 1;
                if opened {
                    state = State::H;
                }
            }
            State::F => {
                cigar.push(CigarOp::Deletion);
                let opened = f_open[idx];
                i -= 1;
                if opened {
                    state = State::H;
                }
            }
        }
    }
    cigar.reverse();
    Alignment {
        score: best_score,
        ref_start: i,
        ref_end: bi,
        read_start: j,
        read_end: bj,
        cigar,
    }
}

/// Global traceback from `(n, m)` to the origin.
fn traceback(
    dir: &[Dir],
    width: usize,
    n: usize,
    m: usize,
    stop_at: impl Fn(usize, usize) -> bool,
) -> Cigar {
    let mut cigar = Cigar::new();
    let (mut i, mut j) = (n, m);
    while (i > 0 || j > 0) && !stop_at(i, j) {
        match dir[i * width + j] {
            Dir::Diag => {
                cigar.push(CigarOp::Match);
                i -= 1;
                j -= 1;
            }
            Dir::Up => {
                cigar.push(CigarOp::Deletion);
                i -= 1;
            }
            Dir::Left => {
                cigar.push(CigarOp::Insertion);
                j -= 1;
            }
            Dir::Stop => break,
        }
    }
    cigar.reverse();
    cigar
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn nw_identical_sequences() {
        let a = seq("GATTACA");
        let aln = needleman_wunsch(&a, &a, Scoring::default());
        assert_eq!(aln.score, 7);
        assert_eq!(aln.cigar.to_string(), "7M");
    }

    #[test]
    fn nw_single_deletion() {
        let aln = needleman_wunsch(&seq("GATTACA"), &seq("GATACA"), Scoring::default());
        assert_eq!(aln.score, 4);
        assert_eq!(aln.cigar.read_len(), 6);
        assert_eq!(aln.cigar.ref_len(), 7);
    }

    #[test]
    fn nw_empty_read_is_all_deletions() {
        let aln = needleman_wunsch(&seq("ACGT"), &DnaSeq::new(), Scoring::default());
        assert_eq!(aln.cigar.to_string(), "4D");
        assert_eq!(aln.score, -8);
    }

    #[test]
    fn sw_finds_embedded_read() {
        let aln = smith_waterman(&seq("TTTTGATTACATTTT"), &seq("GATTACA"), Scoring::default());
        assert_eq!(aln.ref_start, 4);
        assert_eq!(aln.ref_end, 11);
        assert_eq!(aln.score, 7);
        assert_eq!(aln.cigar.to_string(), "7M");
    }

    #[test]
    fn sw_all_mismatch_scores_zero() {
        let aln = smith_waterman(&seq("AAAA"), &seq("TTTT"), Scoring::default());
        assert_eq!(aln.score, 0);
        assert!(aln.cigar.is_empty());
    }

    #[test]
    fn sw_tolerates_one_substitution() {
        let aln = smith_waterman(&seq("CCGATTACACC"), &seq("GATGACA"), Scoring::default());
        assert_eq!(aln.ref_start, 2);
        assert_eq!(aln.score, 6 - 1);
    }

    #[test]
    fn banded_matches_full_when_band_sufficient() {
        let a = seq("GATTACAGATTACA");
        let b = seq("GATTACAGTTACA");
        let full = needleman_wunsch(&a, &b, Scoring::default());
        let banded = banded_global(&a, &b, Scoring::default(), 3).unwrap();
        assert_eq!(banded.score, full.score);
    }

    #[test]
    fn banded_rejects_length_gap_beyond_band() {
        assert!(banded_global(&seq("AAAAAAAAAA"), &seq("AA"), Scoring::default(), 3).is_none());
    }

    #[test]
    fn affine_prefers_one_long_gap() {
        // Flanks long enough that bridging the TTTTTT insert beats any
        // gap-free sub-alignment.
        let reference = seq("AACCGGTTTTTTAACCGG");
        let read = seq("AACCGGAACCGG");
        let scoring = Scoring::new(2, -4, -3, -1);
        let aln = affine_local(&reference, &read, scoring);
        // 12 matches (24) + one 6-base deletion (open −3−1, extend −1×5 = −9).
        assert_eq!(aln.score, 15);
        let deletion_runs: usize = aln
            .cigar
            .runs()
            .iter()
            .filter(|(_, op)| *op == CigarOp::Deletion)
            .count();
        assert_eq!(
            deletion_runs, 1,
            "gap should be a single run: {}",
            aln.cigar
        );
        assert_eq!(aln.cigar.to_string(), "6M6D6M");
    }

    #[test]
    fn affine_matches_identical() {
        let a = seq("ACGTACGT");
        let aln = affine_local(&a, &a, Scoring::default());
        assert_eq!(aln.score, 8);
        assert_eq!(aln.cigar.to_string(), "8M");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(
            banded_edit_distance(&seq("GATTACA"), &seq("GATTACA"), 0),
            Some(0)
        );
        assert_eq!(
            banded_edit_distance(&seq("GATTACA"), &seq("GATAACA"), 2),
            Some(1)
        );
        assert_eq!(
            banded_edit_distance(&seq("GATTACA"), &seq("GATACA"), 2),
            Some(1)
        );
        assert_eq!(
            banded_edit_distance(&seq("GATTACA"), &seq("GAGTTACA"), 2),
            Some(1)
        );
        assert_eq!(banded_edit_distance(&seq("AAAA"), &seq("TTTT"), 3), None);
        assert_eq!(banded_edit_distance(&seq("AAAAAAAA"), &seq("AA"), 3), None);
        assert_eq!(banded_edit_distance(&DnaSeq::new(), &seq("AC"), 2), Some(2));
    }

    /// Unbanded reference Levenshtein for the property test.
    fn naive_edit_distance(a: &DnaSeq, b: &DnaSeq) -> u32 {
        let mut prev: Vec<u32> = (0..=b.len() as u32).collect();
        for i in 1..=a.len() {
            let mut row = vec![i as u32; b.len() + 1];
            for j in 1..=b.len() {
                let sub = prev[j - 1] + u32::from(a[i - 1] != b[j - 1]);
                row[j] = sub.min(prev[j] + 1).min(row[j - 1] + 1);
            }
            prev = row;
        }
        prev[b.len()]
    }

    /// Score a CIGAR against the sequences it claims to align (linear gaps).
    fn rescore(aln: &Alignment, reference: &DnaSeq, read: &DnaSeq, s: Scoring) -> i32 {
        let mut score = 0;
        let (mut i, mut j) = (aln.ref_start, aln.read_start);
        for &(n, op) in aln.cigar.runs() {
            for _ in 0..n {
                match op {
                    CigarOp::Match => {
                        score += s.score_pair(reference[i] == read[j]);
                        i += 1;
                        j += 1;
                    }
                    CigarOp::Deletion => {
                        score += s.gap_open as i32;
                        i += 1;
                    }
                    CigarOp::Insertion => {
                        score += s.gap_open as i32;
                        j += 1;
                    }
                }
            }
        }
        assert_eq!((i, j), (aln.ref_end, aln.read_end));
        score
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn nw_cigar_consistent_with_score(
            a in proptest::collection::vec(0u8..4, 0..40),
            b in proptest::collection::vec(0u8..4, 0..40),
        ) {
            let a: DnaSeq = a.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let b: DnaSeq = b.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let s = Scoring::default();
            let aln = needleman_wunsch(&a, &b, s);
            prop_assert_eq!(aln.cigar.ref_len(), a.len());
            prop_assert_eq!(aln.cigar.read_len(), b.len());
            prop_assert_eq!(rescore(&aln, &a, &b, s), aln.score);
        }

        #[test]
        fn sw_cigar_consistent_with_score(
            a in proptest::collection::vec(0u8..4, 1..40),
            b in proptest::collection::vec(0u8..4, 1..40),
        ) {
            let a: DnaSeq = a.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let b: DnaSeq = b.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let s = Scoring::default();
            let aln = smith_waterman(&a, &b, s);
            prop_assert!(aln.score >= 0);
            prop_assert_eq!(rescore(&aln, &a, &b, s), aln.score);
        }

        #[test]
        fn sw_score_at_least_longest_common_substring(
            a in proptest::collection::vec(0u8..4, 1..30),
        ) {
            // Aligning a sequence against itself must recover full score.
            let a: DnaSeq = a.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let aln = smith_waterman(&a, &a, Scoring::default());
            prop_assert_eq!(aln.score, a.len() as i32);
        }

        #[test]
        fn banded_edit_distance_matches_naive(
            a in proptest::collection::vec(0u8..4, 0..30),
            b in proptest::collection::vec(0u8..4, 0..30),
        ) {
            let a: DnaSeq = a.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let b: DnaSeq = b.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let exact = naive_edit_distance(&a, &b);
            prop_assert_eq!(banded_edit_distance(&a, &b, 64), Some(exact));
            // A tight band either agrees or honestly reports "too far".
            match banded_edit_distance(&a, &b, 3) {
                Some(d) => prop_assert_eq!(d, exact),
                None => prop_assert!(exact > 3),
            }
        }

        #[test]
        fn banded_with_huge_band_equals_nw(
            a in proptest::collection::vec(0u8..4, 0..30),
            b in proptest::collection::vec(0u8..4, 0..30),
        ) {
            let a: DnaSeq = a.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let b: DnaSeq = b.iter().map(|&r| bioseq::Base::from_rank(r as usize)).collect();
            let s = Scoring::default();
            let full = needleman_wunsch(&a, &b, s);
            let banded = banded_global(&a, &b, s, 64).unwrap();
            prop_assert_eq!(banded.score, full.score);
        }
    }
}
