//! Figs. 10a/10b/10c bench: off-chip memory, MBR and RUR series.

use accel::{figure_series, Figure};
use bench::{pim_platform_rows, Workload};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_memory_figures(c: &mut Criterion) {
    // 160 reads > the chip's 144 parallel units, so the figure rows
    // reflect the saturated operating point.
    let workload = Workload::clean(60_000, 160, 100, 17);
    let rows = pim_platform_rows(&workload);
    let platforms = rows.full_platform_list();
    let mut group = c.benchmark_group("fig10_memory");
    group.sample_size(10);
    group.bench_function("all_three_series", |b| {
        b.iter(|| {
            (
                figure_series(Figure::OffchipMemoryFig10a, &platforms),
                figure_series(Figure::MbrFig10b, &platforms),
                figure_series(Figure::RurFig10c, &platforms),
            )
        })
    });
    group.finish();

    // Fig. 10 shape checks on the simulated rows.
    assert_eq!(rows.baseline.offchip_gb, 0.0);
    assert!(
        rows.baseline.mbr_pct < 18.0,
        "MBR-n {:.1}",
        rows.baseline.mbr_pct
    );
    assert!(
        rows.pipelined.mbr_pct < 18.0,
        "MBR-p {:.1}",
        rows.pipelined.mbr_pct
    );
    let rur_p = rows.pipelined.rur_pct;
    for p in &platforms {
        if p.name != "PIM-Aligner-p" {
            assert!(
                p.rur_pct < rur_p,
                "{} RUR {:.1} should trail PIM-Aligner-p {:.1}",
                p.name,
                p.rur_pct,
                rur_p
            );
        }
    }
}

criterion_group!(benches, bench_memory_figures);
criterion_main!(benches);
