//! Fig. 9c bench: the power/throughput trade-off versus parallelism
//! degree `Pd` ∈ 1..=4.

use bench::{simulate_config, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pim_aligner::PimAlignerConfig;

fn bench_pd_sweep(c: &mut Criterion) {
    let workload = Workload::clean(60_000, 30, 100, 13);
    let mut group = c.benchmark_group("fig9c_pd_sweep");
    group.sample_size(10);
    for pd in 1usize..=4 {
        group.bench_with_input(BenchmarkId::new("pd", pd), &pd, |b, &pd| {
            let config = if pd == 1 {
                PimAlignerConfig::baseline()
            } else {
                PimAlignerConfig::pipelined().with_pd(pd)
            };
            b.iter(|| simulate_config(&workload, config.clone()))
        });
    }
    group.finish();

    // Fig. 9c shape: throughput and power both rise with Pd.
    let mut prev_t = 0.0;
    let mut prev_p = 0.0;
    for pd in 1usize..=4 {
        let config = if pd == 1 {
            PimAlignerConfig::baseline()
        } else {
            PimAlignerConfig::pipelined().with_pd(pd)
        };
        let r = simulate_config(&workload, config);
        assert!(r.throughput_qps >= prev_t, "throughput fell at Pd={pd}");
        assert!(r.total_power_w >= prev_p, "power fell at Pd={pd}");
        prev_t = r.throughput_qps;
        prev_p = r.total_power_w;
    }
}

criterion_group!(benches, bench_pd_sweep);
criterion_main!(benches);
