//! Figs. 9a/9b bench: throughput-per-watt and per-mm² series, with the
//! paper's headline ratios asserted on the measured rows.

use accel::{catalog, figure_series, Figure};
use bench::{pim_platform_rows, Workload};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_efficiency_series(c: &mut Criterion) {
    // 160 reads > the chip's 144 parallel units, so the figure rows
    // reflect the saturated operating point.
    let workload = Workload::clean(60_000, 160, 100, 9);
    let rows = pim_platform_rows(&workload);
    let platforms = rows.full_platform_list();
    let mut group = c.benchmark_group("fig9_efficiency");
    group.sample_size(10);
    group.bench_function("throughput_per_watt_series", |b| {
        b.iter(|| figure_series(Figure::ThroughputPerWattFig9a, &platforms))
    });
    group.bench_function("per_mm2_series", |b| {
        b.iter(|| figure_series(Figure::ThroughputPerWattMm2Fig9b, &platforms))
    });
    group.finish();

    // Headline ratios, end-to-end from the simulator.
    let tpw = |name: &str| {
        catalog()
            .iter()
            .find(|p| p.name == name)
            .unwrap()
            .throughput_per_watt()
    };
    let pim_n = rows.baseline.throughput_per_watt();
    let race = pim_n / tpw("RaceLogic");
    assert!(
        (2.5..3.8).contains(&race),
        "RaceLogic T/W ratio {race:.2} (paper ~3.1x)"
    );
    let asic_area = rows.baseline.throughput_per_watt_mm2()
        / catalog()
            .iter()
            .find(|p| p.name == "ASIC")
            .unwrap()
            .throughput_per_watt_mm2();
    assert!(
        (7.0..11.0).contains(&asic_area),
        "ASIC T/W/mm2 ratio {asic_area:.2} (paper ~9x)"
    );
}

criterion_group!(benches, bench_efficiency_series);
criterion_main!(benches);
