//! Micro-benchmarks of the core algorithmic substrates, including the
//! paper's O(m) vs O(n·m) contrast (FM-index backward search vs
//! Smith–Waterman).

use bench::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmindex::{suffix_array, suffix_array_naive, FmIndex, Text};
use swalign::{smith_waterman, Scoring};

fn bench_suffix_array(c: &mut Criterion) {
    let mut group = c.benchmark_group("suffix_array");
    group.sample_size(10);
    for len in [10_000usize, 50_000] {
        let w = Workload::clean(len, 1, 100, 41);
        let text = Text::from_reference(&w.reference);
        group.bench_with_input(BenchmarkId::new("sais", len), &len, |b, _| {
            b.iter(|| suffix_array(&text))
        });
        if len <= 10_000 {
            group.bench_with_input(BenchmarkId::new("naive", len), &len, |b, _| {
                b.iter(|| suffix_array_naive(&text))
            });
        }
    }
    group.finish();
}

fn bench_search_complexity_contrast(c: &mut Criterion) {
    // Paper §II: FM-index backward search is O(m); Smith–Waterman is
    // O(n·m). The gap must widen with n.
    let mut group = c.benchmark_group("fm_vs_sw");
    group.sample_size(10);
    for n in [5_000usize, 20_000] {
        let w = Workload::clean(n, 1, 100, 43);
        let read = w.reads[0].clone();
        let index = FmIndex::new(&w.reference);
        group.bench_with_input(BenchmarkId::new("fm_index", n), &n, |b, _| {
            b.iter(|| index.backward_search(&read))
        });
        group.bench_with_input(BenchmarkId::new("smith_waterman", n), &n, |b, _| {
            b.iter(|| smith_waterman(&w.reference, &read, Scoring::default()))
        });
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for len in [20_000usize, 100_000] {
        let w = Workload::clean(len, 1, 100, 47);
        group.bench_with_input(BenchmarkId::new("fm_index_build", len), &len, |b, _| {
            b.iter(|| FmIndex::new(&w.reference))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_suffix_array,
    bench_search_complexity_contrast,
    bench_index_build
);
criterion_main!(benches);
