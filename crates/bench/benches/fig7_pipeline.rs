//! Fig. 7 bench: the multi-read pipeline.
//!
//! Measures batch alignment under PIM-Aligner-n vs PIM-Aligner-p on the
//! same reads — the simulation-side cost of the pipeline bookkeeping —
//! and checks the modelled ~40 % Pd = 2 gain while doing so.

use bench::{simulate_config, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use pim_aligner::PimAlignerConfig;

fn bench_pipeline_configs(c: &mut Criterion) {
    let workload = Workload::clean(60_000, 30, 100, 3);
    let mut group = c.benchmark_group("fig7_pipeline");
    group.sample_size(10);
    group.bench_function("pim_aligner_n", |b| {
        b.iter(|| simulate_config(&workload, PimAlignerConfig::baseline()))
    });
    group.bench_function("pim_aligner_p", |b| {
        b.iter(|| simulate_config(&workload, PimAlignerConfig::pipelined()))
    });
    group.finish();

    // Shape check recorded alongside the measurements.
    let n = simulate_config(&workload, PimAlignerConfig::baseline());
    let p = simulate_config(&workload, PimAlignerConfig::pipelined());
    let gain = p.throughput_qps / n.throughput_qps;
    assert!(
        (1.25..1.60).contains(&gain),
        "Pd=2 modelled gain {gain:.3} outside the paper's ~40% band"
    );
}

criterion_group!(benches, bench_pipeline_configs);
criterion_main!(benches);
