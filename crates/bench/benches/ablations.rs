//! Ablation benches for the design choices DESIGN.md calls out:
//! Occ bucket width `d`, SA sampling rate, method-I vs method-II, and the
//! first-accept vs exhaustive inexact stage.

use bench::Workload;
use bioseq::DnaSeq;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmindex::{FmIndex, SaStorage};
use pim_aligner::{AddMethod, PimAligner, PimAlignerConfig};

fn bench_bucket_width(c: &mut Criterion) {
    let workload = Workload::clean(60_000, 1, 100, 19);
    let read = workload.reads[0].clone();
    let mut group = c.benchmark_group("ablation_bucket_width");
    group.sample_size(10);
    for d in [16usize, 64, 128, 512] {
        let index = FmIndex::builder()
            .bucket_width(d)
            .build(&workload.reference);
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, _| {
            b.iter(|| index.backward_search(&read))
        });
    }
    group.finish();
}

fn bench_sa_sampling(c: &mut Criterion) {
    let workload = Workload::clean(60_000, 1, 100, 23);
    let read = workload.reads[0].clone();
    let mut group = c.benchmark_group("ablation_sa_sampling");
    group.sample_size(10);
    for rate in [1u32, 4, 16, 64] {
        let index = FmIndex::builder()
            .bucket_width(128)
            .sa_storage(if rate == 1 {
                SaStorage::Full
            } else {
                SaStorage::Sampled(rate)
            })
            .build(&workload.reference);
        group.bench_with_input(BenchmarkId::new("rate", rate), &rate, |b, _| {
            b.iter(|| {
                let hit = index.backward_search(&read).expect("clean read");
                index.locate(hit)
            })
        });
    }
    group.finish();
}

fn bench_add_method(c: &mut Criterion) {
    let workload = Workload::clean(40_000, 10, 100, 29);
    let mut group = c.benchmark_group("ablation_add_method");
    group.sample_size(10);
    for (label, config) in [
        (
            "method_i",
            PimAlignerConfig::baseline().with_method(AddMethod::InPlace),
        ),
        ("method_ii_pd1", {
            // Method-II without pipelining isolates the duplication cost.
            PimAlignerConfig::baseline().with_method(AddMethod::Mirrored)
        }),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut aligner = PimAligner::new(&workload.reference, config.clone());
                aligner.align_batch(&workload.reads).report
            })
        });
    }
    group.finish();
}

fn bench_inexact_modes(c: &mut Criterion) {
    // One substituted read so the inexact stage actually runs.
    let workload = Workload::clean(20_000, 1, 60, 31);
    let mut bases = workload.reads[0].clone().into_bases();
    bases[30] = bioseq::Base::from_rank((bases[30].rank() + 1) % 4);
    let mutated = DnaSeq::from_bases(bases);
    let mut group = c.benchmark_group("ablation_inexact_mode");
    group.sample_size(10);
    for (label, exhaustive) in [("first_accept", false), ("exhaustive", true)] {
        let config = PimAlignerConfig::baseline()
            .with_max_diffs(1)
            .with_indels(false)
            .with_exhaustive_inexact(exhaustive);
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut aligner = PimAligner::new(&workload.reference, config.clone());
                aligner.align_read(&mutated)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bucket_width,
    bench_sa_sampling,
    bench_add_method,
    bench_inexact_modes
);
criterion_main!(benches);
