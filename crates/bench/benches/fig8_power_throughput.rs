//! Figs. 8a/8b bench: producing the ten-platform power and throughput
//! series, including the two simulated PIM-Aligner rows.

use accel::{figure_series, Figure};
use bench::{pim_platform_rows, Workload};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_platform_rows(c: &mut Criterion) {
    // 160 reads > the chip's 144 parallel units, so the figure rows
    // reflect the saturated operating point.
    let workload = Workload::clean(60_000, 160, 100, 5);
    let mut group = c.benchmark_group("fig8_power_throughput");
    group.sample_size(10);
    group.bench_function("simulate_pim_rows", |b| {
        b.iter(|| pim_platform_rows(&workload))
    });
    let rows = pim_platform_rows(&workload);
    let platforms = rows.full_platform_list();
    group.bench_function("extract_series", |b| {
        b.iter(|| {
            (
                figure_series(Figure::PowerFig8a, &platforms),
                figure_series(Figure::ThroughputFig8b, &platforms),
            )
        })
    });
    group.finish();

    // Fig. 8b shape: RaceLogic is the only platform out-throughputing
    // PIM-Aligner-p ("the highest throughput compared with other
    // platforms except RaceLogic").
    let series = figure_series(Figure::ThroughputFig8b, &platforms);
    let pim_p = series.iter().find(|(n, _)| n == "PIM-Aligner-p").unwrap().1;
    for (name, value) in &series {
        if name != "PIM-Aligner-p" && name != "RaceLogic" {
            assert!(value < &pim_p, "{name} should trail PIM-Aligner-p");
        }
    }
}

criterion_group!(benches, bench_platform_rows);
criterion_main!(benches);
