//! Fig. 5b bench: the Monte-Carlo sense-margin analysis.
//!
//! Measures the cost of regenerating the V_sense distributions at several
//! trial counts (the paper uses 10 000) and for both oxide thicknesses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mram::device::CellParams;
use mram::montecarlo;

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_monte_carlo");
    group.sample_size(10);
    for trials in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("trials", trials), &trials, |b, &t| {
            b.iter(|| {
                let report = montecarlo::run(&CellParams::default(), t, 42);
                // Consume the result so the analysis is not optimised out
                // and the figure's invariant holds under measurement.
                assert!(report.read_margin_mv() > report.panel(3).worst_margin_mv());
                report
            })
        });
    }
    group.finish();
}

fn bench_tox_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_tox_sweep");
    group.sample_size(10);
    for tox in [15u32, 17, 20] {
        let tox_nm = tox as f64 / 10.0;
        group.bench_with_input(BenchmarkId::new("tox_nm_x10", tox), &tox_nm, |b, &t| {
            b.iter(|| montecarlo::run(&CellParams::default().with_tox_nm(t), 1_000, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_monte_carlo, bench_tox_sweep);
criterion_main!(benches);
