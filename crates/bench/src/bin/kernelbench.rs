//! `kernelbench` — LFM compare-kernel microbenchmark.
//!
//! ```text
//! kernelbench [--quick] [--out PATH]
//! ```
//!
//! Times the packed bit-plane `XNOR_Match` + prefix-popcount compare
//! stage (DESIGN.md §11) against the boolean-matrix reference kernel it
//! replaced, plus the end-to-end `MappedIndex::lfm` hot path, reporting
//! throughput in Mlfm/s (millions of LFM compare stages per second).
//! Both kernels run the identical logical structure and charge the
//! identical `LogicalOp`s per call, so the ratio isolates the host-side
//! representation change.
//!
//! Results are written as JSON (default `BENCH_kernel.json`) and
//! summarised on stderr; `ci.sh` runs the quick mode and feeds the
//! output to `benchdiff --kind kernel`. Exit status is 1 when the
//! packed kernel fails the ≥5× speedup target in full mode.

use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

use bioseq::Base;
use mram::array::ArrayModel;
use pim_aligner::{MappedIndex, PimAlignerConfig};
use pimsim::reference::{packed_compare_stage, reference_compare_stage, BoolSubArray};
use pimsim::{CycleLedger, SubArray, SubArrayLayout};
use readsim::genome;

/// Speedup the packed kernel must reach over the reference in full mode.
const SPEEDUP_FLOOR: f64 = 5.0;

struct KernelTiming {
    wall_ms: f64,
    mlfm_per_s: f64,
}

fn timing(iterations: usize, wall_s: f64) -> KernelTiming {
    KernelTiming {
        wall_ms: wall_s * 1e3,
        mlfm_per_s: iterations as f64 / wall_s / 1e6,
    }
}

/// Deterministic 2-bit codes for bucket `b` (every bucket differs, all
/// four bases occur).
fn bucket_codes(b: usize) -> Vec<u8> {
    (0..SubArrayLayout::BASES_PER_ROW)
        .map(|j| ((j * 7 + b * 13 + 3) % 4) as u8)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernel.json".to_owned());

    let iterations = if quick { 200_000 } else { 2_000_000 };
    eprintln!(
        "kernelbench: {iterations} compare stages per kernel{}",
        if quick { " (quick)" } else { "" }
    );

    // Identical contents in both representations: 256 loaded buckets,
    // full CRef rows.
    let model = ArrayModel::default();
    let mut scratch = CycleLedger::new();
    let mut packed = SubArray::new(model);
    let mut reference = BoolSubArray::new(model);
    packed.load_cref_rows(&mut scratch);
    reference.load_cref_rows(&mut scratch);
    for b in 0..256 {
        let codes = bucket_codes(b);
        packed.load_bwt_row(b, &codes, &mut scratch);
        reference.load_bwt_row(b, &codes, &mut scratch);
    }

    // The iteration schedule (bucket, base, sentinel, prefix limit) is
    // shared by both kernels so they do the same logical work.
    let schedule: Vec<(usize, Base, Option<usize>, usize)> = (0..iterations)
        .map(|i| {
            (
                i % 256,
                Base::from_rank((i / 256) % 4),
                (i % 3 == 0).then_some(i % 128),
                1 + i % SubArrayLayout::BASES_PER_ROW,
            )
        })
        .collect();

    let mut ledger = CycleLedger::new();
    let mut sink = 0u64;
    let t0 = Instant::now();
    for &(bucket, base, sentinel, within) in &schedule {
        sink +=
            packed_compare_stage(&packed, bucket, base, sentinel, within, None, &mut ledger) as u64;
    }
    let packed_t = timing(iterations, t0.elapsed().as_secs_f64());
    black_box(sink);
    let packed_cycles = ledger.total_busy_cycles();

    let mut ledger = CycleLedger::new();
    let mut ref_sink = 0u64;
    let t0 = Instant::now();
    for &(bucket, base, sentinel, within) in &schedule {
        ref_sink += reference_compare_stage(
            &reference,
            bucket,
            base,
            sentinel,
            within,
            None,
            &mut ledger,
        ) as u64;
    }
    let reference_t = timing(iterations, t0.elapsed().as_secs_f64());
    black_box(ref_sink);

    assert_eq!(sink, ref_sink, "kernels disagree on count_match totals");
    assert_eq!(
        packed_cycles,
        ledger.total_busy_cycles(),
        "kernels disagree on charged cycles"
    );

    let speedup = packed_t.mlfm_per_s / reference_t.mlfm_per_s;
    eprintln!(
        "kernelbench: packed    {:.1} ms ({:.2} Mlfm/s)",
        packed_t.wall_ms, packed_t.mlfm_per_s
    );
    eprintln!(
        "kernelbench: reference {:.1} ms ({:.2} Mlfm/s) — packed is {speedup:.1}x faster",
        reference_t.wall_ms, reference_t.mlfm_per_s
    );

    // End-to-end MappedIndex::lfm (marker read + IM_ADD included) on a
    // multi-sub-array index, faults off.
    let e2e_iters = iterations / 10;
    let reference_genome = genome::uniform(100_000, 11);
    let mapped = MappedIndex::build(&reference_genome, &PimAlignerConfig::baseline());
    let mut injector = mapped.session_injector();
    let mut ledger = CycleLedger::new();
    let text_len = mapped.index().text_len();
    let mut e2e_sink = 0u64;
    let t0 = Instant::now();
    for i in 0..e2e_iters {
        let id = (i * 9_973) % (text_len + 1);
        let nt = Base::from_rank(i % 4);
        e2e_sink += mapped.lfm(nt, id, &mut injector, &mut ledger) as u64;
    }
    let e2e_t = timing(e2e_iters, t0.elapsed().as_secs_f64());
    black_box(e2e_sink);
    eprintln!(
        "kernelbench: e2e lfm   {:.1} ms ({:.2} Mlfm/s over {e2e_iters} calls)",
        e2e_t.wall_ms, e2e_t.mlfm_per_s
    );

    // Hand-rolled JSON: the workspace's vendored serde_json is an
    // offline stub.
    let json = format!(
        "{{\n  \"iterations\": {iterations},\n  \"quick\": {quick},\n  \
         \"packed\": {{ \"wall_ms\": {:.3}, \"mlfm_per_s\": {:.3} }},\n  \
         \"reference\": {{ \"wall_ms\": {:.3}, \"mlfm_per_s\": {:.3} }},\n  \
         \"speedup_vs_reference\": {speedup:.3},\n  \
         \"e2e_lfm\": {{ \"iterations\": {e2e_iters}, \"wall_ms\": {:.3}, \"mlfm_per_s\": {:.3} }}\n}}",
        packed_t.wall_ms,
        packed_t.mlfm_per_s,
        reference_t.wall_ms,
        reference_t.mlfm_per_s,
        e2e_t.wall_ms,
        e2e_t.mlfm_per_s,
    );
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    writeln!(file, "{json}").unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("kernelbench: wrote {out_path}");

    if speedup < SPEEDUP_FLOOR && !quick {
        eprintln!("kernelbench: WARNING: speedup {speedup:.2}x below the {SPEEDUP_FLOOR}x target");
        std::process::exit(1);
    }
}
