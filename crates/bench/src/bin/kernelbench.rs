//! `kernelbench` — LFM compare-kernel microbenchmark.
//!
//! ```text
//! kernelbench [--quick] [--out PATH]
//! ```
//!
//! Times the packed bit-plane `XNOR_Match` + prefix-popcount compare
//! stage (DESIGN.md §11) against the boolean-matrix reference kernel it
//! replaced, plus the end-to-end `MappedIndex::lfm` hot path, reporting
//! throughput in Mlfm/s (millions of LFM compare stages per second).
//! Both kernels run the identical logical structure and charge the
//! identical `LogicalOp`s per call, so the ratio isolates the host-side
//! representation change.
//!
//! Results are written as JSON (default `BENCH_kernel.json`) and
//! summarised on stderr; `ci.sh` runs the quick mode and feeds the
//! output to `benchdiff --kind kernel`. Exit status is 1 when the
//! packed kernel fails the ≥5× speedup target in full mode.

use std::hint::black_box;
use std::io::Write as _;
use std::time::Instant;

use bioseq::Base;
use mram::array::ArrayModel;
use pim_aligner::{LfmBatchScratch, LfmRequest, MappedIndex, PimAlignerConfig};
use pimsim::reference::{
    packed_compare_stage, packed_compare_stage_with, reference_compare_stage, BoolSubArray,
};
use pimsim::{dispatched_path, CycleLedger, KernelCache, SimdPolicy, SubArray, SubArrayLayout};
use readsim::genome;

/// Speedup the packed kernel must reach over the reference in full mode.
const SPEEDUP_FLOOR: f64 = 5.0;

struct KernelTiming {
    wall_ms: f64,
    mlfm_per_s: f64,
}

fn timing(iterations: usize, wall_s: f64) -> KernelTiming {
    KernelTiming {
        wall_ms: wall_s * 1e3,
        mlfm_per_s: iterations as f64 / wall_s / 1e6,
    }
}

/// Deterministic 2-bit codes for bucket `b` (every bucket differs, all
/// four bases occur).
fn bucket_codes(b: usize) -> Vec<u8> {
    (0..SubArrayLayout::BASES_PER_ROW)
        .map(|j| ((j * 7 + b * 13 + 3) % 4) as u8)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernel.json".to_owned());

    let iterations = if quick { 200_000 } else { 2_000_000 };
    eprintln!(
        "kernelbench: {iterations} compare stages per kernel{}",
        if quick { " (quick)" } else { "" }
    );

    // Identical contents in both representations: 256 loaded buckets,
    // full CRef rows.
    let model = ArrayModel::default();
    let mut scratch = CycleLedger::new();
    let mut packed = SubArray::new(model);
    let mut reference = BoolSubArray::new(model);
    packed.load_cref_rows(&mut scratch);
    reference.load_cref_rows(&mut scratch);
    for b in 0..256 {
        let codes = bucket_codes(b);
        packed.load_bwt_row(b, &codes, &mut scratch);
        reference.load_bwt_row(b, &codes, &mut scratch);
    }

    // The iteration schedule (bucket, base, sentinel, prefix limit) is
    // shared by both kernels so they do the same logical work.
    let schedule: Vec<(usize, Base, Option<usize>, usize)> = (0..iterations)
        .map(|i| {
            (
                i % 256,
                Base::from_rank((i / 256) % 4),
                (i % 3 == 0).then_some(i % 128),
                1 + i % SubArrayLayout::BASES_PER_ROW,
            )
        })
        .collect();

    let mut ledger = CycleLedger::new();
    let mut sink = 0u64;
    let t0 = Instant::now();
    for &(bucket, base, sentinel, within) in &schedule {
        sink +=
            packed_compare_stage(&packed, bucket, base, sentinel, within, None, &mut ledger) as u64;
    }
    let packed_t = timing(iterations, t0.elapsed().as_secs_f64());
    black_box(sink);
    let packed_cycles = ledger.total_busy_cycles();

    let mut ledger = CycleLedger::new();
    let mut ref_sink = 0u64;
    let t0 = Instant::now();
    for &(bucket, base, sentinel, within) in &schedule {
        ref_sink += reference_compare_stage(
            &reference,
            bucket,
            base,
            sentinel,
            within,
            None,
            &mut ledger,
        ) as u64;
    }
    let reference_t = timing(iterations, t0.elapsed().as_secs_f64());
    black_box(ref_sink);

    assert_eq!(sink, ref_sink, "kernels disagree on count_match totals");
    assert_eq!(
        packed_cycles,
        ledger.total_busy_cycles(),
        "kernels disagree on charged cycles"
    );

    let speedup = packed_t.mlfm_per_s / reference_t.mlfm_per_s;
    eprintln!(
        "kernelbench: packed    {:.1} ms ({:.2} Mlfm/s)",
        packed_t.wall_ms, packed_t.mlfm_per_s
    );
    eprintln!(
        "kernelbench: reference {:.1} ms ({:.2} Mlfm/s) — packed is {speedup:.1}x faster",
        reference_t.wall_ms, reference_t.mlfm_per_s
    );

    // End-to-end MappedIndex::lfm (marker read + IM_ADD included) on a
    // multi-sub-array index, faults off.
    let e2e_iters = iterations / 10;
    let reference_genome = genome::uniform(100_000, 11);
    let mapped = MappedIndex::build(&reference_genome, &PimAlignerConfig::baseline());
    let mut injector = mapped.session_injector();
    let mut ledger = CycleLedger::new();
    let text_len = mapped.index().text_len();
    let mut e2e_sink = 0u64;
    let t0 = Instant::now();
    for i in 0..e2e_iters {
        let id = (i * 9_973) % (text_len + 1);
        let nt = Base::from_rank(i % 4);
        e2e_sink += mapped.lfm(nt, id, &mut injector, &mut ledger) as u64;
    }
    let e2e_t = timing(e2e_iters, t0.elapsed().as_secs_f64());
    black_box(e2e_sink);
    eprintln!(
        "kernelbench: e2e lfm   {:.1} ms ({:.2} Mlfm/s over {e2e_iters} calls)",
        e2e_t.wall_ms, e2e_t.mlfm_per_s
    );

    // Batched kernel sweep: the same collision-rich request sequence
    // replayed at kernel-batch widths 1/2/4/8. Requests come in groups
    // of eight that share a (bucket, base), so a width-8 batch collapses
    // each call to one plane load; width 1 is the single-read
    // `MappedIndex::lfm` path the batch replaces. Every width must
    // produce identical per-request sums (the oracle), and the width-8
    // wall clock sets `speedup_at_8` for the CI gate.
    let sweep_total = (iterations / 10).max(8_000) / 8 * 8;
    let sweep_req = |k: usize| -> (Base, usize) {
        let bucket = (k / 8) % 128;
        let offset = (k % 8) * 31 % SubArrayLayout::BASES_PER_ROW;
        (
            Base::from_rank((k / 8) % 4),
            bucket * SubArrayLayout::BASES_PER_ROW + offset,
        )
    };
    let mut width_results: Vec<(usize, KernelTiming)> = Vec::new();
    let mut oracle_sums: Option<Vec<u32>> = None;
    let mut single_popcounts = 0u64;
    for &width in &[1usize, 2, 4, 8] {
        let mut ledger = CycleLedger::new();
        let mut sums = Vec::with_capacity(sweep_total);
        let wall_s = if width == 1 {
            let mut injector = mapped.session_injector();
            let t0 = Instant::now();
            for k in 0..sweep_total {
                let (nt, id) = sweep_req(k);
                sums.push(mapped.lfm(nt, id, &mut injector, &mut ledger));
            }
            let wall = t0.elapsed().as_secs_f64();
            single_popcounts = ledger
                .primitives()
                .count(pimsim::costs::LogicalOp::Popcount);
            wall
        } else {
            let mut requests = Vec::with_capacity(width);
            let mut scratch = LfmBatchScratch::new();
            let mut step_sums = Vec::new();
            let t0 = Instant::now();
            for chunk in 0..sweep_total / width {
                requests.clear();
                for s in 0..width {
                    let (nt, id) = sweep_req(chunk * width + s);
                    requests.push(LfmRequest { stream: s, nt, id });
                }
                mapped.lfm_batch_into(
                    &requests,
                    &mut [],
                    &mut ledger,
                    &mut scratch,
                    &mut step_sums,
                );
                sums.extend_from_slice(&step_sums);
            }
            t0.elapsed().as_secs_f64()
        };
        match &oracle_sums {
            None => oracle_sums = Some(sums),
            Some(expected) => assert_eq!(
                &sums, expected,
                "batch width {width} disagrees with the single-read kernel"
            ),
        }
        if width > 1 {
            assert_eq!(
                ledger
                    .primitives()
                    .count(pimsim::costs::LogicalOp::Popcount),
                single_popcounts,
                "batch width {width} must charge one Popcount per request"
            );
        }
        let t = timing(sweep_total, wall_s);
        eprintln!(
            "kernelbench: batch={width}  {:.1} ms ({:.2} Mlfm/s over {sweep_total} requests)",
            t.wall_ms, t.mlfm_per_s
        );
        width_results.push((width, t));
    }
    let speedup_at_8 = width_results
        .last()
        .map(|(_, t8)| t8.mlfm_per_s / width_results[0].1.mlfm_per_s)
        .unwrap_or(0.0);
    eprintln!("kernelbench: batch=8 is {speedup_at_8:.2}x the single-read kernel");

    // SIMD kernel sweep (PR 9): the main compare-stage schedule replayed
    // under the scalar policy (the PR-8 word loop) and the auto policy
    // (runtime-dispatched SSE2/AVX2 plane combine + popcnt prefix
    // count). Charges are identical by construction, so the ratio
    // isolates the host-side lane change on the raw kernel — the number
    // the CI gate floors.
    // Warm-up pass + min-of-3: same noise discipline as the cache sweep
    // below.
    let run_kernel_policy = |policy: SimdPolicy| {
        let mut wall = f64::INFINITY;
        let mut sums = 0u64;
        let mut cycles = 0u64;
        for pass in 0..4 {
            let mut ledger = CycleLedger::new();
            sums = 0;
            let t0 = Instant::now();
            for &(bucket, base, sentinel, within) in &schedule {
                sums += packed_compare_stage_with(
                    &packed,
                    bucket,
                    base,
                    sentinel,
                    within,
                    policy,
                    None,
                    &mut ledger,
                ) as u64;
            }
            if pass > 0 {
                wall = wall.min(t0.elapsed().as_secs_f64());
            }
            black_box(sums);
            cycles = ledger.total_busy_cycles();
        }
        (wall, sums, cycles)
    };
    let (kscalar_s, kscalar_sum, kscalar_cycles) = run_kernel_policy(SimdPolicy::Scalar);
    let (kauto_s, kauto_sum, kauto_cycles) = run_kernel_policy(SimdPolicy::Auto);
    assert_eq!(kscalar_sum, sink, "scalar policy diverged from the oracle");
    assert_eq!(kauto_sum, sink, "auto policy diverged from the oracle");
    assert_eq!(
        kscalar_cycles, kauto_cycles,
        "the kernel policy moved simulated cycles"
    );
    let kscalar_t = timing(iterations, kscalar_s);
    let kauto_t = timing(iterations, kauto_s);
    let kernel_speedup = kauto_t.mlfm_per_s / kscalar_t.mlfm_per_s;
    let path = dispatched_path(SimdPolicy::Auto);
    eprintln!(
        "kernelbench: simd kernel scalar {:.1} ms, auto[{path}] {:.1} ms — {kernel_speedup:.2}x",
        kscalar_t.wall_ms, kauto_t.wall_ms
    );

    // Rank-checkpoint cache sweep: the repeat-dense schedule replayed
    // end-to-end under scalar (cache off) and auto (cache on), at the
    // single-read width and the full kernel-batch width. The schedule
    // revisits the same (bucket, base) checkpoints, so the cache
    // converges to near-100% hits and a hit skips the plane compare and
    // the 32-row marker gather on the host; sums must still equal the
    // single-read oracle and the charged cycles must be identical — the
    // policy is host-wall-clock only.
    let simd_width = 8;
    // Each timed measurement repeats the sweep and keeps the *fastest*
    // pass: scheduler interference on a busy 1-core CI runner only ever
    // adds time, so the minimum is the noise-robust estimator for a
    // speedup ratio. One untimed warm-up pass per policy faults in
    // pages and trains predictors (and, for auto, fills the cache to
    // its repeat-dense steady state) before the clock starts.
    let simd_passes = 5;
    let run_policy = |width: usize, policy: SimdPolicy, cache: Option<&mut KernelCache>| {
        let mut cache = cache;
        let mut wall_s = f64::INFINITY;
        let mut last: Option<(Vec<u32>, CycleLedger)> = None;
        for pass in 0..simd_passes + 1 {
            let mut ledger = CycleLedger::new();
            let mut sums = Vec::with_capacity(sweep_total);
            let t0 = Instant::now();
            if width == 1 {
                let mut injector = mapped.session_injector();
                for k in 0..sweep_total {
                    let (nt, id) = sweep_req(k);
                    sums.push(mapped.lfm_with(
                        nt,
                        id,
                        &mut injector,
                        policy,
                        cache.as_deref_mut(),
                        &mut ledger,
                    ));
                }
            } else {
                let mut requests = Vec::with_capacity(width);
                let mut scratch = LfmBatchScratch::new();
                let mut step_sums = Vec::new();
                for chunk in 0..sweep_total / width {
                    requests.clear();
                    for s in 0..width {
                        let (nt, id) = sweep_req(chunk * width + s);
                        requests.push(LfmRequest { stream: s, nt, id });
                    }
                    mapped.lfm_batch_into_with(
                        &requests,
                        &mut [],
                        policy,
                        cache.as_deref_mut(),
                        &mut ledger,
                        &mut scratch,
                        &mut step_sums,
                    );
                    sums.extend_from_slice(&step_sums);
                }
            }
            // Pass 0 is the warm-up: its wall clock is discarded.
            if pass > 0 {
                wall_s = wall_s.min(t0.elapsed().as_secs_f64());
            }
            last = Some((sums, ledger));
        }
        let (sums, ledger) = last.expect("at least one pass ran");
        (wall_s, sums, ledger)
    };
    let (single_scalar_s, ss_sums, ss_ledger) = run_policy(1, SimdPolicy::Scalar, None);
    let mut cache1 = KernelCache::new();
    let (single_auto_s, sa_sums, sa_ledger) = run_policy(1, SimdPolicy::Auto, Some(&mut cache1));
    let (scalar_s, scalar_sums, scalar_ledger) = run_policy(simd_width, SimdPolicy::Scalar, None);
    let mut cache = KernelCache::new();
    let (auto_s, auto_sums, auto_ledger) =
        run_policy(simd_width, SimdPolicy::Auto, Some(&mut cache));
    let oracle1 = oracle_sums.as_ref().expect("width sweep ran first");
    assert_eq!(&ss_sums, oracle1, "scalar single-read diverged from oracle");
    assert_eq!(&sa_sums, oracle1, "auto single-read diverged from oracle");
    assert_eq!(
        ss_ledger.total_busy_cycles(),
        sa_ledger.total_busy_cycles(),
        "the kernel policy moved single-read simulated cycles"
    );
    assert_eq!(ss_ledger.primitives(), sa_ledger.primitives());
    let single_scalar_t = timing(sweep_total, single_scalar_s);
    let single_auto_t = timing(sweep_total, single_auto_s);
    let single_speedup = single_auto_t.mlfm_per_s / single_scalar_t.mlfm_per_s;
    let single_cache_stats = sa_ledger.kernel_cache_counters();
    eprintln!(
        "kernelbench: simd lfm    scalar {:.1} ms, auto {:.1} ms — {single_speedup:.2}x, \
         cache {:.1}% hits",
        single_scalar_t.wall_ms,
        single_auto_t.wall_ms,
        single_cache_stats.hit_rate() * 100.0,
    );
    let oracle = oracle_sums.as_ref().expect("width sweep ran first");
    assert_eq!(&scalar_sums, oracle, "scalar policy disagrees with oracle");
    assert_eq!(&auto_sums, oracle, "auto policy disagrees with oracle");
    assert_eq!(
        scalar_ledger.total_busy_cycles(),
        auto_ledger.total_busy_cycles(),
        "the kernel policy moved simulated cycles"
    );
    assert_eq!(
        scalar_ledger.primitives(),
        auto_ledger.primitives(),
        "the kernel policy moved primitive charges"
    );
    let scalar_t = timing(sweep_total, scalar_s);
    let auto_t = timing(sweep_total, auto_s);
    let e2e_simd_speedup = auto_t.mlfm_per_s / scalar_t.mlfm_per_s;
    let cache_stats = auto_ledger.kernel_cache_counters();
    eprintln!(
        "kernelbench: simd e2e    scalar {:.1} ms, auto {:.1} ms — {e2e_simd_speedup:.2}x, \
         cache {:.1}% hits ({} evictions)",
        scalar_t.wall_ms,
        auto_t.wall_ms,
        cache_stats.hit_rate() * 100.0,
        cache_stats.evictions
    );

    // Pd pipeline scheduler on a mostly-unshared schedule (distinct
    // buckets per stream, so compares cannot collapse into shared
    // groups): with Pd = 2 the next read's compare overlaps the current
    // read's transfer + add, so the scheduled makespan must come in
    // under the serial Pd = 1 issue order for the identical request
    // stream.
    let pipe_calls = 2_048;
    let mapped_pd2 =
        MappedIndex::build(&reference_genome, &PimAlignerConfig::baseline().with_pd(2));
    let mut pipe_makespans = Vec::new();
    for mapped_pd in [&mapped, &mapped_pd2] {
        let mut ledger = CycleLedger::new();
        let mut requests = Vec::with_capacity(8);
        let mut pipe_sink = 0u64;
        for call in 0..pipe_calls {
            requests.clear();
            for s in 0..8usize {
                let bucket = (call * 8 + s) % 128;
                let id = bucket * SubArrayLayout::BASES_PER_ROW + (s * 29 + call) % 256;
                requests.push(LfmRequest {
                    stream: s,
                    nt: Base::from_rank((call + s) % 4),
                    id,
                });
            }
            pipe_sink += mapped_pd
                .lfm_batch(&requests, &mut [], &mut ledger)
                .iter()
                .map(|&c| c as u64)
                .sum::<u64>();
        }
        black_box(pipe_sink);
        pipe_makespans.push(ledger.pipeline_counters());
    }
    let (pd1_pipe, pd2_pipe) = (pipe_makespans[0], pipe_makespans[1]);
    assert_eq!(
        pd1_pipe.issued, pd2_pipe.issued,
        "pd sweep issued different request counts"
    );
    eprintln!(
        "kernelbench: pipeline  pd1 makespan {} cy, pd2 makespan {} cy (saves {})",
        pd1_pipe.makespan_cycles,
        pd2_pipe.makespan_cycles,
        pd2_pipe.overlap_saved_cycles()
    );

    // Hand-rolled JSON: the workspace's vendored serde_json is an
    // offline stub.
    let widths_json = width_results
        .iter()
        .map(|(w, t)| {
            format!(
                "{{ \"batch\": {w}, \"wall_ms\": {:.3}, \"mlfm_per_s\": {:.3} }}",
                t.wall_ms, t.mlfm_per_s
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"iterations\": {iterations},\n  \"quick\": {quick},\n  \
         \"packed\": {{ \"wall_ms\": {:.3}, \"mlfm_per_s\": {:.3} }},\n  \
         \"reference\": {{ \"wall_ms\": {:.3}, \"mlfm_per_s\": {:.3} }},\n  \
         \"speedup_vs_reference\": {speedup:.3},\n  \
         \"e2e_lfm\": {{ \"iterations\": {e2e_iters}, \"wall_ms\": {:.3}, \"mlfm_per_s\": {:.3} }},\n  \
         \"batch\": {{ \"requests\": {sweep_total}, \"widths\": [{widths_json}], \
         \"speedup_at_8\": {speedup_at_8:.3} }},\n  \
         \"simd\": {{ \"dispatched_path\": \"{path}\", \
         \"kernel_speedup\": {kernel_speedup:.3}, \
         \"speedup_vs_scalar\": {single_speedup:.3}, \
         \"batch8_speedup\": {e2e_simd_speedup:.3}, \
         \"scalar\": {{ \"wall_ms\": {:.3}, \"mlfm_per_s\": {:.3} }}, \
         \"auto\": {{ \"wall_ms\": {:.3}, \"mlfm_per_s\": {:.3} }}, \
         \"cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"hit_rate\": {:.6} }} }},\n  \
         \"pipeline\": {{ \"issued\": {}, \"pd1_makespan_cycles\": {}, \
         \"pd2_makespan_cycles\": {}, \"pd2_overlap_saved_cycles\": {} }}\n}}",
        packed_t.wall_ms,
        packed_t.mlfm_per_s,
        reference_t.wall_ms,
        reference_t.mlfm_per_s,
        e2e_t.wall_ms,
        e2e_t.mlfm_per_s,
        single_scalar_t.wall_ms,
        single_scalar_t.mlfm_per_s,
        single_auto_t.wall_ms,
        single_auto_t.mlfm_per_s,
        cache_stats.hits,
        cache_stats.misses,
        cache_stats.evictions,
        cache_stats.hit_rate(),
        pd1_pipe.issued,
        pd1_pipe.makespan_cycles,
        pd2_pipe.makespan_cycles,
        pd2_pipe.overlap_saved_cycles(),
    );
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    writeln!(file, "{json}").unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("kernelbench: wrote {out_path}");

    if speedup < SPEEDUP_FLOOR && !quick {
        eprintln!("kernelbench: WARNING: speedup {speedup:.2}x below the {SPEEDUP_FLOOR}x target");
        std::process::exit(1);
    }
}
