//! `parbench` — shared-platform parallel-engine benchmark.
//!
//! ```text
//! parbench [--quick] [--out PATH]
//! ```
//!
//! Measures, for a large-reference / large-batch workload (4096 reads
//! full, 512 quick — the batch must dominate index build and session
//! setup so the thread-scaling row reflects the parallel region):
//!
//! * the one-time `MappedIndex` build cost;
//! * batch alignment throughput at 1, 4 and 8 worker threads over one
//!   shared [`Platform`], and the 8-vs-1 thread scaling ratio;
//! * the same 8-thread batch in the pre-platform style — every worker
//!   building its own private index — as the regression baseline.
//!
//! The report records `host_cores` so the `benchdiff` scaling gate can
//! scale its floor to the machine: thread scaling is physically bounded
//! by the cores actually present.
//!
//! Results are written as JSON (default `BENCH_parallel.json` in the
//! current directory) and summarised on stderr. `--quick` shrinks the
//! workload for CI smoke runs.

use std::io::Write as _;
use std::time::Instant;

use bench::workload::Workload;
use bioseq::DnaSeq;
use pim_aligner::{PimAligner, PimAlignerConfig, Platform};

struct Timing {
    threads: usize,
    wall_ms: f64,
    reads_per_s: f64,
}

fn time_shared(platform: &Platform, reads: &[DnaSeq], threads: usize) -> Timing {
    let t0 = Instant::now();
    let result = platform
        .align_batch_parallel(reads, threads)
        .expect("batch aligns");
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        result.outcomes.iter().all(|o| o.is_mapped()),
        "clean workload must map"
    );
    Timing {
        threads,
        wall_ms: wall * 1e3,
        reads_per_s: reads.len() as f64 / wall,
    }
}

/// The pre-platform engine: each worker constructs its own aligner —
/// and therefore its own index — before touching a read.
fn time_seed_style(reference: &DnaSeq, reads: &[DnaSeq], threads: usize) -> Timing {
    let config = PimAlignerConfig::baseline();
    let chunk = reads.len().div_ceil(threads);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for slice in reads.chunks(chunk) {
            let config = config.clone();
            scope.spawn(move || {
                let mut aligner = PimAligner::new(reference, config);
                for read in slice {
                    assert!(aligner.align_read(read).is_mapped());
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    Timing {
        threads,
        wall_ms: wall * 1e3,
        reads_per_s: reads.len() as f64 / wall,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_parallel.json".to_owned());

    // Large reference, large batch: the read set must dominate index
    // build and per-worker session setup, otherwise the thread-scaling
    // row measures fixed costs instead of the parallel region.
    let (genome_len, read_count) = if quick {
        (60_000, 512)
    } else {
        (400_000, 4096)
    };
    let workload = Workload::clean(genome_len, read_count, 80, 1207);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "parbench: {} bp reference, {} x 80 bp reads, {} host core(s){}",
        genome_len,
        read_count,
        host_cores,
        if quick { " (quick)" } else { "" }
    );

    let t0 = Instant::now();
    let platform = Platform::new(&workload.reference, PimAlignerConfig::baseline());
    let index_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    eprintln!("parbench: index build {index_build_ms:.1} ms (once per run)");

    let mut timings = Vec::new();
    for threads in [1usize, 4, 8] {
        let t = time_shared(&platform, &workload.reads, threads);
        eprintln!(
            "parbench: shared platform, {} thread(s): {:.1} ms ({:.0} reads/s)",
            t.threads, t.wall_ms, t.reads_per_s
        );
        timings.push(t);
    }

    let seed_style = time_seed_style(&workload.reference, &workload.reads, 8);
    let shared8 = timings
        .iter()
        .find(|t| t.threads == 8)
        .expect("8-thread run");
    let shared1 = timings
        .iter()
        .find(|t| t.threads == 1)
        .expect("1-thread run");
    let speedup = seed_style.wall_ms / shared8.wall_ms;
    let scaling = shared8.reads_per_s / shared1.reads_per_s;
    eprintln!(
        "parbench: seed-style (index per worker), 8 threads: {:.1} ms — shared platform is {:.1}x faster",
        seed_style.wall_ms, speedup
    );
    eprintln!("parbench: 8-thread vs 1-thread scaling {scaling:.2}x on {host_cores} core(s)");

    // Hand-rolled JSON: the workspace's vendored serde_json is an
    // offline stub, so the report is assembled textually.
    let shared_rows = timings
        .iter()
        .map(|t| {
            format!(
                "    {{ \"threads\": {}, \"wall_ms\": {:.3}, \"reads_per_s\": {:.1} }}",
                t.threads, t.wall_ms, t.reads_per_s
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"workload\": {{ \"genome_len\": {genome_len}, \"read_count\": {read_count}, \
         \"read_len\": 80, \"seed\": 1207, \"quick\": {quick} }},\n  \
         \"host_cores\": {host_cores},\n  \
         \"index_build_ms\": {index_build_ms:.3},\n  \
         \"shared_platform\": [\n{shared_rows}\n  ],\n  \
         \"seed_style_8_threads\": {{ \"threads\": {}, \"wall_ms\": {:.3}, \"reads_per_s\": {:.1} }},\n  \
         \"speedup_8_threads_vs_seed_style\": {speedup:.3},\n  \
         \"scaling_8_vs_1\": {scaling:.3}\n}}",
        seed_style.threads, seed_style.wall_ms, seed_style.reads_per_s,
    );
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    writeln!(file, "{json}").unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("parbench: wrote {out_path}");

    if speedup < 2.0 && !quick {
        eprintln!("parbench: WARNING: speedup {speedup:.2}x below the 2x target");
        std::process::exit(1);
    }
}
