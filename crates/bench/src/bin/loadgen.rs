//! `loadgen` — open-loop load generator and saturation-knee sweep for
//! the `pimserve` daemon.
//!
//! ```text
//! loadgen --make-ref PATH [--quick]        write the reference FASTA
//! loadgen --addr HOST:PORT [options]       drive a running pimserve
//!
//! options:
//!   --quick          CI-sized workload and shorter phases
//!   --out PATH       result JSON (default BENCH_serve.json)
//!   --slo-ms N       accepted-request p99 SLO for the overload row (default 500)
//!   --prom-out PATH  capture the server's Prometheus exposition before drain
//!   --drain          send the Drain opcode after the sweep (shuts the server down)
//! ```
//!
//! Arrivals are **open-loop**: the sender thread follows a fixed
//! schedule derived from the target rate and never waits for responses,
//! so queueing delay cannot throttle the offered load — exactly the
//! regime where an unbounded server falls over. A receiver thread on the
//! same connection correlates responses by `req_id`; an `Overloaded`
//! response is retried after the server's retry-after hint plus jittered
//! exponential backoff, up to [`MAX_RETRIES`] attempts.
//!
//! The sweep doubles the target rate until the server sheds (> 1 % of
//! attempts), calls the last clean rate the **saturation knee**, then
//! runs one overload phase at twice the knee. Quick mode additionally
//! caps the sweep at [`QUICK_SWEEP_CAP_RPS`] so the CI overload phase
//! stays within what a box co-hosting sender and server can measure
//! honestly. The committed
//! `BENCH_serve.json` is a structural baseline: `benchdiff --kind serve`
//! compares schema fingerprints and re-derives the invariants (every
//! request accounted, the knee exists, overload sheds, accepted p99
//! within SLO) from the fresh run, never raw milliseconds.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bench::json::{self, Value};
use bench::workload::Workload;
use pim_aligner::service::protocol::{AlignRequest, Client, Request, Response};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload seed shared with `--make-ref`, so the reads the generator
/// sends are drawn from the same genome the server indexed.
const SEED: u64 = 4207;

/// Attempts per request before giving up on a persistently-shedding
/// server (1 fresh + 2 retries).
const MAX_RETRIES: u32 = 2;

/// Sweep start rate and doubling cap (2^12 doublings ≈ 1.6 M rps —
/// far past what one sender thread can offer, so the achieved-rate
/// guard below always breaks first on a server the client cannot
/// saturate).
const START_RPS: u64 = 100;
const MAX_DOUBLINGS: u32 = 12;

/// Quick-mode sweep ceiling. The CI smoke shares one small box between
/// the server and the sender, so past ~25 k rps offered the *sender*
/// starves and accepted-latency stops describing the server — on a
/// fast pass of the sweep the knee would double and the overload phase
/// (2× knee) would melt the box. Capping the quick sweep here bounds
/// the overload phase at twice this rate; the full bench is uncapped.
const QUICK_SWEEP_CAP_RPS: u64 = 12_800;

fn workload(quick: bool) -> (usize, usize, usize, Workload) {
    let (genome_len, read_count, read_len) = if quick {
        (40_000, 512, 48)
    } else {
        (200_000, 4096, 80)
    };
    (
        genome_len,
        read_count,
        read_len,
        Workload::clean(genome_len, read_count, read_len, SEED),
    )
}

/// What one request is waiting on.
struct PendingReq {
    read_idx: usize,
    first_sent: Instant,
    attempts: u32,
}

/// One measured phase at a fixed offered rate.
#[derive(Debug, Clone, Copy)]
struct PhaseStats {
    target_rps: u64,
    achieved_rps: f64,
    sent: u64,
    attempts: u64,
    answered: u64,
    aligned: u64,
    shed_responses: u64,
    shed_gave_up: u64,
    deadline_exceeded: u64,
    other: u64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
}

impl PhaseStats {
    fn shed_frac(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.shed_responses as f64 / self.attempts as f64
        }
    }

    fn json(&self) -> String {
        format!(
            "{{ \"target_rps\": {}, \"achieved_rps\": {:.1}, \"sent\": {}, \
             \"attempts\": {}, \"answered\": {}, \"aligned\": {}, \
             \"shed_responses\": {}, \"shed_gave_up\": {}, \
             \"deadline_exceeded\": {}, \"other\": {}, \
             \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"p99_ms\": {:.3} }}",
            self.target_rps,
            self.achieved_rps,
            self.sent,
            self.attempts,
            self.answered,
            self.aligned,
            self.shed_responses,
            self.shed_gave_up,
            self.deadline_exceeded,
            self.other,
            self.p50_ms,
            self.p90_ms,
            self.p99_ms,
        )
    }
}

fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 * q).ceil() as usize)
        .saturating_sub(1)
        .min(sorted_ns.len() - 1);
    sorted_ns[idx] as f64 / 1e6
}

/// Drives one open-loop phase: `total` fresh requests at `target_rps`,
/// each retried on `Overloaded` with jittered exponential backoff, and
/// waits until every request has a terminal outcome.
fn run_phase(addr: &str, reads: &[String], target_rps: u64, total: u64) -> PhaseStats {
    let client = Client::connect(addr).expect("connect to pimserve");
    let mut sender = client.try_clone().expect("clone connection");
    let mut receiver = client;

    let pending: Arc<Mutex<HashMap<u64, PendingReq>>> = Arc::new(Mutex::new(HashMap::new()));
    // Retries scheduled by the receiver: (due, req_id). The sender
    // services whichever is due between fresh sends.
    let retries: Arc<Mutex<Vec<(Instant, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let outstanding = Arc::new(AtomicU64::new(total));
    let attempts = Arc::new(AtomicU64::new(0));

    let recv_pending = Arc::clone(&pending);
    let recv_retries = Arc::clone(&retries);
    let recv_outstanding = Arc::clone(&outstanding);
    let receiver_thread = std::thread::spawn(move || {
        let mut rng = StdRng::seed_from_u64(SEED ^ 0xfeed);
        let mut latencies_ns: Vec<u64> = Vec::new();
        let mut aligned = 0u64;
        let mut shed_responses = 0u64;
        let mut shed_gave_up = 0u64;
        let mut deadline_exceeded = 0u64;
        let mut other = 0u64;
        let mut answered = 0u64;
        while recv_outstanding.load(Ordering::Relaxed) > 0 {
            let resp = receiver
                .recv()
                .expect("receive response")
                .expect("server closed mid-phase");
            let req_id = resp.req_id();
            let mut terminal = true;
            match resp {
                Response::Aligned { .. } => {
                    let p = recv_pending.lock().unwrap();
                    let info = p.get(&req_id).expect("aligned response correlates");
                    latencies_ns.push(info.first_sent.elapsed().as_nanos() as u64);
                    aligned += 1;
                }
                Response::Overloaded { retry_after_ms, .. } => {
                    shed_responses += 1;
                    let mut p = recv_pending.lock().unwrap();
                    let info = p.get_mut(&req_id).expect("shed response correlates");
                    if info.attempts <= MAX_RETRIES {
                        // Jittered exponential backoff seeded on the
                        // server's hint: hint * 2^(attempt-1) * U(1, 2).
                        let base = u64::from(retry_after_ms.max(1)) << (info.attempts - 1);
                        let backoff = Duration::from_micros(rng.gen_range(base..=2 * base) * 1000);
                        recv_retries
                            .lock()
                            .unwrap()
                            .push((Instant::now() + backoff, req_id));
                        terminal = false;
                    } else {
                        shed_gave_up += 1;
                    }
                }
                Response::DeadlineExceeded { .. } => deadline_exceeded += 1,
                _ => other += 1,
            }
            if terminal {
                recv_pending.lock().unwrap().remove(&req_id);
                answered += 1;
                recv_outstanding.fetch_sub(1, Ordering::Relaxed);
            }
        }
        latencies_ns.sort_unstable();
        (
            latencies_ns,
            aligned,
            shed_responses,
            shed_gave_up,
            deadline_exceeded,
            other,
            answered,
        )
    });

    // Open-loop sender: fresh request i departs at start + i/rate,
    // regardless of how the server is doing; due retries interleave.
    let interval = Duration::from_nanos(1_000_000_000 / target_rps.max(1));
    let start = Instant::now();
    let mut fresh_sent = 0u64;
    while outstanding.load(Ordering::Relaxed) > 0 {
        let now = Instant::now();
        let due_retry = {
            let mut r = retries.lock().unwrap();
            r.iter()
                .position(|&(due, _)| due <= now)
                .map(|i| r.swap_remove(i).1)
        };
        if let Some(req_id) = due_retry {
            let read_idx = {
                let mut p = pending.lock().unwrap();
                let info = p.get_mut(&req_id).expect("retry correlates");
                info.attempts += 1;
                info.read_idx
            };
            attempts.fetch_add(1, Ordering::Relaxed);
            send_read(&mut sender, req_id, &reads[read_idx]);
            continue;
        }
        if fresh_sent < total {
            let due = start + interval * (fresh_sent as u32);
            if now >= due {
                let req_id = fresh_sent;
                let read_idx = (fresh_sent as usize) % reads.len();
                pending.lock().unwrap().insert(
                    req_id,
                    PendingReq {
                        read_idx,
                        first_sent: Instant::now(),
                        attempts: 1,
                    },
                );
                attempts.fetch_add(1, Ordering::Relaxed);
                send_read(&mut sender, req_id, &reads[read_idx]);
                fresh_sent += 1;
                continue;
            }
            // Not due yet: sleep out most of the gap.
            std::thread::sleep(due.saturating_duration_since(now).min(interval));
            continue;
        }
        // Fresh schedule exhausted; wait for stragglers and retries.
        std::thread::sleep(Duration::from_millis(1));
    }
    let send_window = start.elapsed().as_secs_f64();

    let (latencies_ns, aligned, shed_responses, shed_gave_up, deadline_exceeded, other, answered) =
        receiver_thread.join().expect("receiver thread");
    PhaseStats {
        target_rps,
        achieved_rps: fresh_sent as f64 / send_window.max(1e-9),
        sent: fresh_sent,
        attempts: attempts.load(Ordering::Relaxed),
        answered,
        aligned,
        shed_responses,
        shed_gave_up,
        deadline_exceeded,
        other,
        p50_ms: percentile_ms(&latencies_ns, 0.50),
        p90_ms: percentile_ms(&latencies_ns, 0.90),
        p99_ms: percentile_ms(&latencies_ns, 0.99),
    }
}

fn send_read(sender: &mut Client, req_id: u64, seq: &str) {
    sender
        .send(&Request::Align(AlignRequest {
            req_id,
            deadline_ms: 0,
            id: format!("lg{req_id}"),
            seq: seq.to_owned(),
        }))
        .expect("send request");
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Scrape cadence for the live Stats series during the overload phase.
const SCRAPE_INTERVAL_MS: u64 = 50;

/// Request-id base for scrape traffic, far outside the align id space so
/// logs never confuse a Stats poll with a load request.
const SCRAPE_REQ_BASE: u64 = 1 << 60;

/// One point of the mid-overload Stats series: the windowed throughput
/// and live gauges the dashboards would plot.
struct ObsPoint {
    t_ms: u64,
    rps_1s: f64,
    rps_10s: f64,
    queue_depth: u64,
    inflight_bytes: u64,
    responses: u64,
}

impl ObsPoint {
    fn from_snapshot(doc: &Value, t_ms: u64) -> ObsPoint {
        let f = |p: &str| doc.get(p).and_then(Value::as_f64).unwrap_or(0.0);
        let u = |p: &str| doc.get(p).and_then(Value::as_u64).unwrap_or(0);
        ObsPoint {
            t_ms,
            rps_1s: f("windows.w1.rps"),
            rps_10s: f("windows.w10.rps"),
            queue_depth: u("gauges.queue_depth"),
            inflight_bytes: u("gauges.inflight_bytes"),
            responses: u("cumulative.responses"),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{ \"t_ms\": {}, \"rps_1s\": {:.3}, \"rps_10s\": {:.3}, \"queue_depth\": {}, \
             \"inflight_bytes\": {}, \"responses\": {} }}",
            self.t_ms,
            self.rps_1s,
            self.rps_10s,
            self.queue_depth,
            self.inflight_bytes,
            self.responses
        )
    }
}

/// The shared counter set re-emitted from a Stats snapshot section
/// (`service.*` or `cumulative.*`). Scalars only — never the raw
/// histogram arrays — so the result JSON's schema fingerprint is stable
/// across runs.
const OBS_COUNTERS: [&str; 11] = [
    "received",
    "accepted",
    "shed_queue_full",
    "shed_inflight_bytes",
    "rejected_draining",
    "rejected_invalid",
    "expired_in_queue",
    "late_responses",
    "panics_quarantined",
    "batches",
    "responses",
];

fn counters_json(doc: &Value, prefix: &str) -> String {
    let fields: Vec<String> = OBS_COUNTERS
        .iter()
        .map(|name| {
            let v = doc
                .get(&format!("{prefix}.{name}"))
                .and_then(Value::as_u64)
                .unwrap_or(0);
            format!("\"{name}\": {v}")
        })
        .collect();
    format!("{{ {} }}", fields.join(", "))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");

    if let Some(path) = flag_value(&args, "--make-ref") {
        let (genome_len, _, _, w) = workload(quick);
        let fasta = format!(
            ">loadgen synthetic uniform genome seed={SEED}\n{}\n",
            w.reference
        );
        std::fs::write(&path, fasta).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("loadgen: wrote {genome_len} bp reference to {path}");
        return;
    }

    let Some(addr) = flag_value(&args, "--addr") else {
        eprintln!("usage: loadgen --make-ref PATH [--quick]");
        eprintln!(
            "       loadgen --addr HOST:PORT [--quick] [--out PATH] [--slo-ms N] \
             [--prom-out PATH] [--drain]"
        );
        std::process::exit(2);
    };
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let slo_ms: f64 = flag_value(&args, "--slo-ms")
        .map(|v| v.parse().expect("--slo-ms must be a number"))
        .unwrap_or(500.0);
    let prom_out = flag_value(&args, "--prom-out");
    let drain = args.iter().any(|a| a == "--drain");

    let (genome_len, read_count, read_len, w) = workload(quick);
    let reads: Vec<String> = w.reads.iter().map(|r| r.to_string()).collect();
    let phase_secs = if quick { 0.4 } else { 1.0 };
    eprintln!(
        "loadgen: {} reads x {} bp against pimserve at {addr}{}",
        read_count,
        read_len,
        if quick { " (quick)" } else { "" }
    );

    // Saturation sweep: double the offered rate until the server sheds
    // or the sender itself saturates (achieved < 80 % of target).
    let mut sweep: Vec<PhaseStats> = Vec::new();
    let mut knee_rps = 0u64;
    let mut shed_rate = 0u64;
    let mut rate = START_RPS;
    for _ in 0..=MAX_DOUBLINGS {
        if quick && rate > QUICK_SWEEP_CAP_RPS {
            break;
        }
        let total = ((rate as f64 * phase_secs) as u64).max(40);
        let stats = run_phase(&addr, &reads, rate, total);
        eprintln!(
            "loadgen: sweep {} rps (achieved {:.0}): {} sent, {} aligned, {} shed, p99 {:.1} ms",
            stats.target_rps,
            stats.achieved_rps,
            stats.sent,
            stats.aligned,
            stats.shed_responses,
            stats.p99_ms
        );
        let shed = stats.shed_frac() > 0.01;
        let sender_bound = stats.achieved_rps < 0.8 * rate as f64;
        sweep.push(stats);
        if shed {
            shed_rate = rate;
            break;
        }
        knee_rps = rate;
        if sender_bound {
            eprintln!(
                "loadgen: sender saturated at {:.0} rps without shedding",
                stats.achieved_rps
            );
            break;
        }
        rate *= 2;
    }

    // Overload phase: at least twice the knee, and at least the rate
    // that actually shed — the server must hold its accepted-p99 SLO by
    // shedding, not by slowing the clients down.
    let overload_rate = (2 * knee_rps.max(START_RPS)).max(shed_rate);
    let total = ((overload_rate as f64 * phase_secs) as u64).max(80);

    // Mid-run observability scrape: a dedicated connection polls the
    // live Stats snapshot while the overload phase saturates the queue —
    // proving the exposition is answered inline, never shed. The first
    // scrape happens before the stop check, so the series is never
    // empty.
    let scrape_stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let addr = addr.clone();
        let stop = Arc::clone(&scrape_stop);
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect for stats scrape");
            let t0 = Instant::now();
            let mut points: Vec<ObsPoint> = Vec::new();
            let mut req_id = SCRAPE_REQ_BASE;
            loop {
                let text = c.stats(req_id).expect("stats answered mid-overload");
                let doc = json::parse(&text).expect("stats snapshot parses");
                points.push(ObsPoint::from_snapshot(
                    &doc,
                    t0.elapsed().as_millis() as u64,
                ));
                req_id += 1;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(SCRAPE_INTERVAL_MS));
            }
            points
        })
    };
    let overload = run_phase(&addr, &reads, overload_rate, total);
    scrape_stop.store(true, Ordering::Relaxed);
    let series = scraper.join().expect("scraper thread");
    eprintln!(
        "loadgen: overload {} rps: {} sent, {} aligned, {} shed responses, \
         {} gave up, accepted p99 {:.1} ms (SLO {slo_ms} ms)",
        overload.target_rps,
        overload.sent,
        overload.aligned,
        overload.shed_responses,
        overload.shed_gave_up,
        overload.p99_ms
    );

    // Final pre-drain scrape: the settled lifetime counters (everything
    // answered, gauges back to zero) and the Prometheus exposition.
    let (final_snap, prom_text) = {
        let mut c = Client::connect(&addr).expect("connect for final scrape");
        let text = c.stats(SCRAPE_REQ_BASE - 2).expect("final stats");
        let prom = c.prom(SCRAPE_REQ_BASE - 1).expect("prom exposition");
        (
            json::parse(&text).expect("final stats snapshot parses"),
            prom,
        )
    };
    if let Some(path) = &prom_out {
        std::fs::write(path, &prom_text).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("loadgen: wrote {path}");
    }
    let snap_u64 = |p: &str| final_snap.get(p).and_then(Value::as_u64).unwrap_or(0);
    let max_rps_10s = series
        .iter()
        .map(|p| p.rps_10s)
        .chain(final_snap.get("windows.w10.rps").and_then(Value::as_f64))
        .fold(0.0f64, f64::max);
    let max_queue_depth = series
        .iter()
        .map(|p| p.queue_depth)
        .chain([snap_u64("cumulative.max_queue_depth")])
        .max()
        .unwrap_or(0);
    eprintln!(
        "loadgen: obs: {} stats scrapes, peak 10s window {:.0} rps, peak queue depth {}, \
         {} watchdog stalls",
        series.len(),
        max_rps_10s,
        max_queue_depth,
        snap_u64("watchdog.stalls"),
    );

    if drain {
        let mut c = Client::connect(&addr).expect("connect for drain");
        let ack = c.drain(u64::MAX).expect("drain");
        eprintln!("loadgen: drain acknowledged: {ack:?}");
    }

    let series_rows: Vec<String> = series
        .iter()
        .map(|p| format!("      {}", p.json()))
        .collect();
    let obs_json = format!(
        "{{\n    \"scrapes\": {},\n    \"max_rps_10s\": {max_rps_10s:.3},\n    \
         \"max_queue_depth\": {max_queue_depth},\n    \
         \"watchdog\": {{ \"stalls\": {}, \"max_head_age_ms\": {} }},\n    \
         \"lifetime\": {},\n    \"cumulative\": {},\n    \
         \"series\": [\n{}\n    ]\n  }}",
        series.len(),
        snap_u64("watchdog.stalls"),
        snap_u64("watchdog.max_head_age_ms"),
        counters_json(&final_snap, "service"),
        counters_json(&final_snap, "cumulative"),
        series_rows.join(",\n"),
    );

    let rows: Vec<String> = sweep.iter().map(|s| format!("    {}", s.json())).collect();
    let json = format!(
        "{{\n  \"schema_version\": 2,\n  \"workload\": {{ \"genome_len\": {genome_len}, \
         \"read_count\": {read_count}, \"read_len\": {read_len}, \"seed\": {SEED}, \
         \"quick\": {quick} }},\n  \
         \"slo_ms\": {slo_ms:.1},\n  \
         \"max_retries\": {MAX_RETRIES},\n  \
         \"sweep\": [\n{}\n  ],\n  \
         \"knee_rps\": {knee_rps},\n  \
         \"overload\": {},\n  \
         \"obs\": {}\n}}",
        rows.join(",\n"),
        overload.json(),
        obs_json,
    );
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    writeln!(file, "{json}").unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("loadgen: wrote {out_path}");
}
