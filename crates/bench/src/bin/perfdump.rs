//! `perfdump` — dump the platform's cycle-level metrics breakdown.
//!
//! ```text
//! perfdump [--quick] [--pipelined] [--out PATH]
//! ```
//!
//! Runs the paper-shaped workload through one traced alignment session
//! and writes the full metrics document (`PerfReport::to_metrics_json`:
//! report + fault telemetry + per-primitive cycle breakdown + spans) to
//! `BENCH_metrics.json`. The report is derived entirely from *simulated*
//! cycles, so the output is deterministic — byte-identical across runs
//! and machines — and is committed as the metrics baseline. The `host`
//! section (wall-clock telemetry) is redacted to its empty default for
//! exactly that reason; `hostbench` owns the live host numbers.
//!
//! `--quick` shrinks the workload for CI smoke runs; `--pipelined`
//! switches to PIM-Aligner-p (Pd = 2).

use std::io::Write as _;

use bench::workload::Workload;
use pim_aligner::{HostTotals, PimAlignerConfig, Platform};

/// Span-ring capacity: large enough to keep the index build, every
/// per-read phase span and the tail of the per-`LFM` spans.
const TRACE_CAPACITY: usize = 512;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let pipelined = args.iter().any(|a| a == "--pipelined");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_metrics.json".to_owned());

    // A mixed workload: mostly-exact paper-statistics reads so both the
    // exact and inexact stages (and their phase attribution) show up.
    let (genome_len, read_count) = if quick { (40_000, 24) } else { (120_000, 64) };
    let workload = Workload::paper_scaled(genome_len, read_count, 80, 2304);
    let config = if pipelined {
        PimAlignerConfig::pipelined()
    } else {
        PimAlignerConfig::baseline()
    };
    eprintln!(
        "perfdump: {} bp reference, {} x 80 bp reads, Pd={}{}",
        genome_len,
        read_count,
        config.pd(),
        if quick { " (quick)" } else { "" }
    );

    let platform = Platform::new(&workload.reference, config);
    let mut session = platform.session();
    session.enable_tracing(TRACE_CAPACITY);
    for read in &workload.reads {
        let _ = session.align_read(read);
    }
    let mut report = session.report();
    // The committed baseline must stay byte-identical across runs and
    // machines, and the host section is wall-clock time. Redact it; the
    // live host numbers belong to `hostbench`/`pimalign --metrics-out`.
    report.host = HostTotals::default();
    eprintln!("perfdump: host telemetry redacted (wall-clock; kept deterministic)");

    let b = &report.breakdown;
    assert!(
        b.reconciles(),
        "primitive cycles {} must reconcile with the ledger total {}",
        b.primitive_cycles_total,
        b.total_busy_cycles
    );
    assert_eq!(
        b.lfm_by_phase.total(),
        report.lfm_calls,
        "phase attribution must cover every LFM"
    );
    eprintln!(
        "perfdump: {} LFMs ({} exact / {} inexact), {} busy cycles, {} sub-array activations",
        report.lfm_calls,
        b.lfm_by_phase.exact,
        b.lfm_by_phase.inexact,
        b.total_busy_cycles,
        b.subarray_activations
    );
    eprintln!(
        "perfdump: {} spans kept, {} dropped (ring capacity {TRACE_CAPACITY})",
        b.spans.len(),
        b.spans_dropped
    );

    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    write!(file, "{}", report.to_metrics_json())
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("perfdump: wrote {out_path}");
}
