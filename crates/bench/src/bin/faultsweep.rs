//! `faultsweep` — device variation vs alignment accuracy, with and
//! without verify-and-recover (DESIGN.md §8, EXPERIMENTS.md).
//!
//! Usage:
//!
//! ```text
//! faultsweep [campaign-seed]
//! ```
//!
//! Sweeps the comparator sense-offset level, derives the per-decision
//! misread probability from the Monte-Carlo margin analysis at each
//! level, adds level-scaled structural faults (stuck-at cells, transient
//! row reads, carry-chain kills), and aligns one fixed workload twice
//! per level: recovery disabled and recovery enabled
//! ([`RecoveryPolicy::standard`]). The table reports the fraction of
//! reads placed at their ground-truth donor locus plus the recovery
//! telemetry, showing where the unprotected platform starts mis-placing
//! reads and that the verify-and-recover path holds accuracy.

use bench::Workload;
use mram::device::CellParams;
use mram::faults::{FaultCampaign, FaultModel};
use pim_aligner::{PimAligner, PimAlignerConfig, RecoveryPolicy};

/// Comparator offset levels (mV-scale sigma multiplier on the sense
/// path); 0 is the paper's nominal fault-free design point.
const OFFSET_LEVELS: &[f64] = &[0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 2.5];
const MC_TRIALS: usize = 2_000;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| {
            s.parse().unwrap_or_else(|e| {
                eprintln!("faultsweep: invalid campaign seed: {e}");
                std::process::exit(2);
            })
        })
        .unwrap_or(23);
    // Error-free reads: every read has one unambiguous ground-truth
    // locus, so accuracy isolates the fault response (paper-statistics
    // reads would fold sequencing error into the same number).
    let workload = Workload::clean(40_000, 60, 80, 29);

    println!("Fault sweep: sense-offset level vs placement accuracy (campaign seed {seed})");
    println!(
        "workload: {} reads x {} bp on a {} bp reference",
        workload.reads.len(),
        80,
        40_000
    );
    println!();
    println!(
        "{:>6}  {:>9}  {:>9}  {:>9}  {:>8}  {:>8}  {:>8}  {:>7}",
        "offset", "p(misread)", "acc(raw)", "acc(rec)", "injected", "retries", "fallback", "unrec"
    );
    for &offset in OFFSET_LEVELS {
        let cell = CellParams::default().with_sense_offset(offset);
        let model = FaultModel::from_cell(&cell, MC_TRIALS, 7);
        let campaign = FaultCampaign::seeded(seed)
            .with_model(model)
            .with_stuck_at_rate(2e-5 * offset)
            .with_transient_row_rate(2e-3 * offset)
            .with_carry_fault_prob(1e-3 * offset);
        let raw = run_once(&workload, campaign, RecoveryPolicy::disabled());
        let rec = run_once(&workload, campaign, RecoveryPolicy::standard());
        println!(
            "{:>6.2}  {:>9.2e}  {:>8.1}%  {:>8.1}%  {:>8}  {:>8}  {:>8}  {:>7}",
            offset,
            model.xnor_misread_prob(),
            100.0 * raw.accuracy,
            100.0 * rec.accuracy,
            rec.injected,
            rec.retries,
            rec.fallbacks,
            rec.unrecoverable,
        );
    }
    println!();
    println!("acc(raw): fraction of reads at the ground-truth locus, recovery disabled");
    println!("acc(rec): same with verify-and-recover (retry -> escalate z -> host fallback)");
}

struct SweepPoint {
    accuracy: f64,
    injected: u64,
    retries: u64,
    fallbacks: u64,
    unrecoverable: u64,
}

fn run_once(workload: &Workload, campaign: FaultCampaign, recovery: RecoveryPolicy) -> SweepPoint {
    let config = PimAlignerConfig::baseline()
        .with_fault_campaign(campaign)
        .with_recovery(recovery);
    let mut aligner = PimAligner::new(&workload.reference, config);
    let result = aligner.align_batch(&workload.reads);
    let correct = result
        .outcomes
        .iter()
        .zip(&workload.truth)
        .filter(|(o, &truth)| o.positions().is_some_and(|p| p.contains(&truth)))
        .count();
    let t = result.report.faults;
    SweepPoint {
        accuracy: correct as f64 / workload.reads.len() as f64,
        injected: t.injected_total(),
        retries: t.retries,
        fallbacks: t.host_fallbacks,
        unrecoverable: t.unrecoverable,
    }
}
