//! `indexbench` — index-artifact build/load benchmark and equivalence
//! check.
//!
//! ```text
//! indexbench [--quick] [--out PATH]
//! ```
//!
//! Measures, for a sweep of genome sizes, the build-once/load-many
//! asymmetry the artifact exists for:
//!
//! * `build_ms`: `IndexArtifact::build` (SA-IS + BWT + tables per
//!   shard) — what a cold start pays every run;
//! * `load_ms`: `IndexArtifact::load_from_path` (deserialise +
//!   checksum + Occ rebuild) — what the warm path pays instead;
//! * `boot_ms`: the sub-array mapping, which both paths pay identically
//!   and which therefore stays out of `load_speedup = build / load`;
//! * the serialised footprint against the `size_model` prediction
//!   (`model_rel_err` — the save format and the model share the exact
//!   byte accounting, so any drift is a bug, not noise);
//! * on the smallest genome, byte-identity of sharded vs unsharded SAM
//!   output over a reads-with-errors workload (`sam_identical`).
//!
//! Results are written as JSON (default `BENCH_index.json`) and
//! summarised on stderr; `benchdiff --kind index` gates the load
//! speedup, the SAM identity, the footprint reconciliation and a
//! bytes-per-base tripwire against the committed baseline. `--quick`
//! shrinks the sweep for CI; the full sweep reaches 64 Mbp, which is
//! only practical because the build cost is paid once per artifact.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use bench::workload::Workload;
use pim_aligner::{sam, IndexArtifact, PimAlignerConfig, Platform, ShardedPlatform};
use readsim::genome;

struct SweepRow {
    genome_len: usize,
    sa_rate: u32,
    build_ms: f64,
    save_ms: f64,
    load_ms: f64,
    boot_ms: f64,
    load_speedup: f64,
    index_bytes: usize,
    bytes_per_bp: f64,
    model_bytes: usize,
    model_rel_err: f64,
}

fn ms(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

/// One sweep point: build, save, load, boot; report timings and the
/// footprint reconciliation.
fn sweep_point(genome_len: usize, sa_rate: u32, scratch: &PathBuf) -> SweepRow {
    let reference = genome::uniform(genome_len, 0x1de0 ^ genome_len as u64);
    let config = PimAlignerConfig::baseline();

    let t0 = Instant::now();
    let artifact = IndexArtifact::build("bench-ref", &reference, sa_rate, 0, 0);
    let build_ms = ms(t0);

    let t0 = Instant::now();
    artifact.save_to_path(scratch).expect("save artifact");
    let save_ms = ms(t0);

    let t0 = Instant::now();
    let loaded = IndexArtifact::load_from_path(scratch).expect("load artifact");
    let load_ms = ms(t0);
    // The sub-array mapping runs identically on cold and warm boots, so
    // it is timed once and excluded from the speedup ratio.
    let t0 = Instant::now();
    let _warm = ShardedPlatform::from_artifact(&loaded, config, true);
    let boot_ms = ms(t0);
    let _ = std::fs::remove_file(scratch);

    let index_bytes = artifact.index_bytes();
    let model_bytes = artifact.model_bytes();
    let model_rel_err = index_bytes.abs_diff(model_bytes) as f64 / model_bytes as f64;
    SweepRow {
        genome_len,
        sa_rate,
        build_ms,
        save_ms,
        load_ms,
        boot_ms,
        load_speedup: build_ms / load_ms,
        index_bytes,
        bytes_per_bp: index_bytes as f64 / genome_len as f64,
        model_bytes,
        model_rel_err,
    }
}

/// Renders a chunk's outcomes exactly as `pimalign` would, so the
/// sharded-vs-unsharded comparison is a true SAM byte diff.
fn sam_for(
    ref_id: &str,
    ref_len: usize,
    reads: &[bioseq::DnaSeq],
    pairs: &[(pim_aligner::AlignmentOutcome, pim_aligner::MappedStrand)],
) -> String {
    let mut out = sam::header(ref_id, ref_len);
    for (i, (read, (outcome, strand))) in reads.iter().zip(pairs).enumerate() {
        let record = sam::record_for(&format!("read{i}"), ref_id, read, None, outcome, *strand);
        out.push_str(&record.to_line());
        out.push('\n');
    }
    out
}

/// Byte-identity of sharded vs unsharded SAM over an erroring workload:
/// exact, inexact and unmapped arms all occur.
fn check_sam_identity(threads: usize) -> bool {
    let workload = Workload::paper_scaled(200_000, 200, 100, 0xa11);
    let config = PimAlignerConfig::baseline();
    let flat = Platform::new(&workload.reference, config.clone());
    let (flat_pairs, _) = flat
        .align_chunk_parallel(&workload.reads, threads, 0, true)
        .expect("unsharded chunk");

    let artifact = IndexArtifact::build("bench-ref", &workload.reference, 1, 50_000, 512);
    let sharded = ShardedPlatform::from_artifact(&artifact, config, false);
    let (sharded_pairs, _) = sharded
        .align_chunk(&workload.reads, threads, 0, true)
        .expect("sharded chunk");

    let ref_len = workload.reference.len();
    let flat_sam = sam_for("bench-ref", ref_len, &workload.reads, &flat_pairs);
    let sharded_sam = sam_for("bench-ref", ref_len, &workload.reads, &sharded_pairs);
    flat_sam == sharded_sam
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_index.json".to_owned());

    // Full sweep reaches the >= 64 Mbp point the artifact is for; the
    // larger genomes sample the SA so the artifact stays disk-friendly.
    // The speedup grows with genome size (SA-IS has a larger linear
    // constant than deserialise + Occ rebuild), so the gate is judged at
    // the largest point of whichever sweep ran.
    let sweep_spec: &[(usize, u32)] = if quick {
        &[(200_000, 1), (4_000_000, 4)]
    } else {
        &[(1_000_000, 1), (8_000_000, 8), (64_000_000, 32)]
    };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "indexbench: sweeping {} genome size(s) up to {} bp on {host_cores} core(s){}",
        sweep_spec.len(),
        sweep_spec.last().expect("nonempty sweep").0,
        if quick { " (quick)" } else { "" }
    );

    let mut rows = Vec::new();
    for &(genome_len, sa_rate) in sweep_spec {
        let scratch = std::env::temp_dir().join(format!("indexbench-{genome_len}.pimx"));
        let row = sweep_point(genome_len, sa_rate, &scratch);
        eprintln!(
            "indexbench: {genome_len} bp @ SA rate {sa_rate}: build {:.1} ms, save {:.1} ms, \
             load {:.1} ms ({:.1}x faster), boot {:.1} ms, {:.2} bytes/bp, model err {:.2e}",
            row.build_ms,
            row.save_ms,
            row.load_ms,
            row.load_speedup,
            row.boot_ms,
            row.bytes_per_bp,
            row.model_rel_err
        );
        rows.push(row);
    }
    let largest = rows.last().expect("nonempty sweep");
    let footprint_max_rel_err = rows.iter().map(|r| r.model_rel_err).fold(0.0f64, f64::max);

    let sam_identical = check_sam_identity(4);
    eprintln!(
        "indexbench: sharded vs unsharded SAM: {}",
        if sam_identical {
            "byte-identical"
        } else {
            "MISMATCH"
        }
    );

    // Hand-rolled JSON: the workspace's vendored serde_json is an
    // offline stub, so the report is assembled textually.
    let sweep_rows = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"genome_len\": {}, \"sa_rate\": {}, \"build_ms\": {:.3}, \
                 \"save_ms\": {:.3}, \"load_ms\": {:.3}, \"boot_ms\": {:.3}, \
                 \"load_speedup\": {:.3}, \
                 \"index_bytes\": {}, \"bytes_per_bp\": {:.4}, \"model_bytes\": {}, \
                 \"model_rel_err\": {:.6} }}",
                r.genome_len,
                r.sa_rate,
                r.build_ms,
                r.save_ms,
                r.load_ms,
                r.boot_ms,
                r.load_speedup,
                r.index_bytes,
                r.bytes_per_bp,
                r.model_bytes,
                r.model_rel_err,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"host_cores\": {host_cores},\n  \
         \"sweep\": [\n{sweep_rows}\n  ],\n  \
         \"largest\": {{ \"genome_len\": {}, \"load_speedup\": {:.3} }},\n  \
         \"sam_identical\": {sam_identical},\n  \
         \"footprint_max_rel_err\": {footprint_max_rel_err:.6}\n}}",
        largest.genome_len, largest.load_speedup,
    );
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    writeln!(file, "{json}").unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("indexbench: wrote {out_path}");

    if !sam_identical {
        std::process::exit(1);
    }
}
