//! `benchdiff` — the bench-regression gate.
//!
//! ```text
//! benchdiff <fresh.json> <baseline.json> [--min-ratio R] [--min-speedup S]
//! ```
//!
//! Compares a freshly measured `parbench` JSON report against the
//! checked-in baseline and exits non-zero when throughput regressed
//! beyond tolerance. CI runs `parbench --quick` and feeds its output
//! here (see `ci.sh`), so a change that slows the shared-platform
//! engine or breaks the index-sharing speedup fails the build.
//!
//! Checks, in order:
//!
//! * both files parse and carry the `parbench` shape;
//! * for every thread count present in both `shared_platform` tables,
//!   `fresh.reads_per_s ≥ R × baseline.reads_per_s` (default `R` 0.5 —
//!   wall-clock throughput on shared CI machines is noisy, and when the
//!   fresh run is `--quick` against the full-size baseline the workloads
//!   differ, so this is a broad-regression tripwire, not a benchmark);
//! * `fresh.speedup_8_threads_vs_seed_style ≥ S` (default `S` 2.0): the
//!   build-the-index-once speedup must survive regardless of machine
//!   speed — it is a ratio of two runs on the same machine.
//!
//! Exit status: 0 within tolerance, 1 regression detected, 2 usage or
//! parse error.

use std::process::ExitCode;

use bench::json::{self, Value};

struct Args {
    fresh: String,
    baseline: String,
    min_ratio: f64,
    min_speedup: f64,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut min_ratio = 0.5;
    let mut min_speedup = 2.0;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--min-ratio" | "--min-speedup" => {
                let flag = argv[i].clone();
                i += 1;
                let value: f64 = argv
                    .get(i)
                    .ok_or(format!("{flag} needs a value"))?
                    .parse()
                    .map_err(|e| format!("invalid {flag}: {e}"))?;
                if !value.is_finite() || value <= 0.0 {
                    return Err(format!("invalid {flag}: must be positive"));
                }
                if flag == "--min-ratio" {
                    min_ratio = value;
                } else {
                    min_speedup = value;
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            _ => positional.push(argv[i].clone()),
        }
        i += 1;
    }
    let [fresh, baseline] = positional.as_slice() else {
        return Err(
            "usage: benchdiff <fresh.json> <baseline.json> [--min-ratio R] [--min-speedup S]"
                .to_owned(),
        );
    };
    Ok(Args {
        fresh: fresh.clone(),
        baseline: baseline.clone(),
        min_ratio,
        min_speedup,
    })
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// `(threads, reads_per_s)` rows of the `shared_platform` table.
fn throughput_rows(doc: &Value, path: &str) -> Result<Vec<(u64, f64)>, String> {
    let rows = doc
        .get("shared_platform")
        .and_then(Value::as_array)
        .ok_or(format!("{path}: missing shared_platform array"))?;
    rows.iter()
        .map(|row| {
            let threads = row
                .get("threads")
                .and_then(Value::as_u64)
                .ok_or(format!("{path}: row missing threads"))?;
            let rps = row
                .get("reads_per_s")
                .and_then(Value::as_f64)
                .ok_or(format!("{path}: row missing reads_per_s"))?;
            Ok((threads, rps))
        })
        .collect()
}

fn run(args: &Args) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(&args.baseline)?;
    let fresh_rows = throughput_rows(&fresh, &args.fresh)?;
    let base_rows = throughput_rows(&baseline, &args.baseline)?;

    let mut ok = true;
    let mut compared = 0;
    for &(threads, fresh_rps) in &fresh_rows {
        let Some(&(_, base_rps)) = base_rows.iter().find(|&&(t, _)| t == threads) else {
            continue;
        };
        compared += 1;
        let ratio = fresh_rps / base_rps;
        let verdict = if ratio >= args.min_ratio {
            "ok"
        } else {
            "REGRESSION"
        };
        eprintln!(
            "benchdiff: {threads} thread(s): {fresh_rps:.0} vs {base_rps:.0} reads/s \
             (ratio {ratio:.2}, floor {:.2}) {verdict}",
            args.min_ratio
        );
        if ratio < args.min_ratio {
            ok = false;
        }
    }
    if compared == 0 {
        return Err("no common thread counts between fresh and baseline".to_owned());
    }

    let speedup = fresh
        .get("speedup_8_threads_vs_seed_style")
        .and_then(Value::as_f64)
        .ok_or(format!(
            "{}: missing speedup_8_threads_vs_seed_style",
            args.fresh
        ))?;
    let verdict = if speedup >= args.min_speedup {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: shared-platform speedup {speedup:.1}x (floor {:.1}x) {verdict}",
        args.min_speedup
    );
    if speedup < args.min_speedup {
        ok = false;
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("benchdiff: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(true) => {
            eprintln!("benchdiff: within tolerance");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("benchdiff: throughput regression beyond tolerance");
            ExitCode::from(1)
        }
        Err(msg) => {
            eprintln!("benchdiff: {msg}");
            ExitCode::from(2)
        }
    }
}
