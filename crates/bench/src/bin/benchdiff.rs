//! `benchdiff` — the bench-regression gate.
//!
//! ```text
//! benchdiff <fresh.json> <baseline.json> [--kind parallel|kernel|metrics|host|serve|index]
//!           [--min-ratio R] [--min-speedup S] [--min-scaling C]
//! benchdiff <trace.json> --kind trace [--workers N]
//! benchdiff <fresh_serve.json> <exposition.txt> --kind obs
//! ```
//!
//! Compares a freshly measured bench JSON report against the checked-in
//! baseline and exits non-zero when throughput regressed beyond
//! tolerance. CI runs `parbench --quick` and `kernelbench --quick` and
//! feeds their outputs here (see `ci.sh`), so a change that slows the
//! shared-platform engine, breaks the index-sharing speedup, or gives
//! back the packed-kernel speedup fails the build.
//!
//! `--kind parallel` (default) checks, in order:
//!
//! * both files parse and carry the `parbench` shape;
//! * for every thread count present in both `shared_platform` tables,
//!   `fresh.reads_per_s ≥ R × baseline.reads_per_s` (default `R` 0.5 —
//!   wall-clock throughput on shared CI machines is noisy, and when the
//!   fresh run is `--quick` against the full-size baseline the workloads
//!   differ, so this is a broad-regression tripwire, not a benchmark);
//! * `fresh.speedup_8_threads_vs_seed_style ≥ S` (default `S` 2.0): the
//!   build-the-index-once speedup must survive regardless of machine
//!   speed — it is a ratio of two runs on the same machine;
//! * `fresh.scaling_8_vs_1` against a **core-aware** floor derived from
//!   `C` (default 3.0) and the report's `host_cores`: thread scaling is
//!   physically bounded by the cores present, so the effective floor is
//!   `min(C, 0.75 × min(host_cores, 8))` on multi-core machines and a
//!   plain non-degradation check (0.6×) on a single core, where
//!   parallelism cannot yield speedup at all.
//!
//! `--kind kernel` checks the `kernelbench` shape:
//!
//! * `fresh.speedup_vs_reference ≥ S` (default `S` 5.0) — the packed
//!   kernel's advantage over the boolean reference, a same-machine
//!   ratio and therefore the strict check;
//! * `fresh.packed.mlfm_per_s ≥ R × baseline.packed.mlfm_per_s`
//!   (default `R` 0.5) — the broad machine-speed tripwire.
//!
//! `--kind metrics` diffs a fresh `perfdump`-shaped metrics document
//! against the committed `BENCH_metrics.json`. Host wall-clock numbers
//! are nondeterministic, so the check is structural-plus-invariants,
//! never a byte diff of host fields:
//!
//! * the schema fingerprints ([`Value::schema_paths`]) must match after
//!   dropping every `host.`-prefixed path — the `host` section may be
//!   live in one file and redacted in the other;
//! * fresh simulated-cycle invariants must hold: primitive cycles
//!   reconcile with the ledger total, phase attribution covers every
//!   `LFM`, and the zone heatmap never exceeds the sub-array activation
//!   count (zone notes are a *view* of existing charges, not new ones).
//!
//! `--kind trace` validates a Chrome trace-event file (one positional):
//! it must parse, carry `displayTimeUnit: "ms"`, contain at least one
//! complete (`"X"`) span with `name`/`tid`/`ts`/`dur`, and — when
//! `--workers N` is given — name a `worker-i` track for every
//! `i < N` via `thread_name` metadata, whether or not that worker
//! claimed work.
//!
//! `--kind host` diffs a fresh `hostbench` report against the committed
//! `BENCH_host.json`: schema fingerprints must match exactly, and the
//! fresh run must be self-consistent (one per-read latency sample per
//! read, one worker row per thread, worker read counts summing to the
//! workload, a positive parallel-region wall clock, and a load-balance
//! percentage within (0, 100]).
//!
//! `--kind serve` diffs a fresh `loadgen` report against the committed
//! `BENCH_serve.json`. Rates and latencies are machine-dependent, so
//! the check is structural-plus-invariants: schema fingerprints must
//! match (sweep row counts may differ — rows dedupe by shape), and the
//! fresh run must show a working overload story — every request in
//! every phase accounted for (`answered == sent`), a positive
//! saturation knee, an overload phase at ≥ 2x the knee that actually
//! shed, and an accepted-request p99 within the report's own SLO.
//!
//! `--kind obs` validates the live observability plane from one serve
//! cycle. The first positional is a fresh `loadgen` report (schema v2,
//! with the `obs` block scraped mid-run over the wire); the second is
//! the Prometheus text exposition `loadgen --prom-out` captured before
//! drain — read as plain text, not JSON. Checks:
//!
//! * at least one mid-overload Stats scrape succeeded (the exposition
//!   is answered inline even while the queue saturates);
//! * every shared counter in the final snapshot reconciles **exactly**
//!   between the lifetime `service` section and the ring-derived
//!   `cumulative` aggregate — the rolling window loses nothing;
//! * the peak 10-second windowed throughput is non-zero (the ring saw
//!   the load);
//! * the watchdog stayed quiet (a healthy serve cycle must not trip the
//!   batcher-stall detector);
//! * the exposition is well-formed text format 0.0.4: only `# HELP` /
//!   `# TYPE` comments, metric names in the legal charset, every sample
//!   a finite float, and at least one sample present.
//!
//! `--kind index` diffs a fresh `indexbench` report against the
//! committed `BENCH_index.json`. Timings are wall-clock, so only ratios
//! and exact byte counts are gated:
//!
//! * schema fingerprints must match (sweep rows dedupe by shape);
//! * `largest.load_speedup ≥ S` (default `S` 5.0) — loading the
//!   serialised artifact must beat rebuilding the index at the largest
//!   swept genome, a same-machine ratio and therefore strict;
//! * `sam_identical` must be `true` — sharded alignment is only
//!   admissible while its merged SAM is byte-identical to the
//!   unsharded platform's;
//! * `footprint_max_rel_err ≤ 0.1 %` — the serialised footprint must
//!   reconcile with the `size_model` prediction (the two share exact
//!   byte accounting; slack covers only future fixed-overhead fields);
//! * per-genome `bytes_per_bp` within ±5 % of the baseline row with the
//!   same geometry — a size-accounting tripwire.
//!
//! Exit status: 0 within tolerance, 1 regression detected, 2 usage or
//! parse error.
//!
//! Every run also writes a machine-readable gate record to
//! `target/ci/gate_<kind>.json` — one entry per check with the measured
//! value, the threshold and the verdict — so CI can upload the gate
//! outcomes as artifacts even when the log stream is lost. A parse
//! error records an `"error"` field instead of checks.

use std::io::Write as _;
use std::process::ExitCode;

use bench::json::{self, Value};

/// One recorded check: `measured` and `threshold` are pre-rendered JSON
/// fragments (numbers, booleans or strings) so heterogeneous checks
/// share one record shape.
struct Check {
    name: String,
    measured: String,
    threshold: String,
    op: &'static str,
    pass: bool,
}

/// Collects per-check outcomes for one benchdiff invocation and writes
/// the `target/ci/gate_<kind>.json` record.
struct Gate {
    kind: &'static str,
    checks: Vec<Check>,
    error: Option<String>,
}

/// A finite float as a JSON number (6 decimals keeps ratios readable).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_owned()
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl Gate {
    fn new(kind: &'static str) -> Gate {
        Gate {
            kind,
            checks: Vec::new(),
            error: None,
        }
    }

    /// Records one check and returns its verdict (so call sites can
    /// fold it into their running `ok`).
    fn record(
        &mut self,
        name: &str,
        measured: String,
        threshold: String,
        op: &'static str,
        pass: bool,
    ) -> bool {
        self.checks.push(Check {
            name: name.to_owned(),
            measured,
            threshold,
            op,
            pass,
        });
        pass
    }

    /// `measured >= floor` on floats.
    fn ge(&mut self, name: &str, measured: f64, floor: f64) -> bool {
        self.record(
            name,
            json_f64(measured),
            json_f64(floor),
            ">=",
            measured >= floor,
        )
    }

    /// `measured <= ceiling` on floats.
    fn le(&mut self, name: &str, measured: f64, ceiling: f64) -> bool {
        self.record(
            name,
            json_f64(measured),
            json_f64(ceiling),
            "<=",
            measured <= ceiling,
        )
    }

    /// Exact equality on counts.
    fn eq_u64(&mut self, name: &str, measured: u64, expected: u64) -> bool {
        self.record(
            name,
            measured.to_string(),
            expected.to_string(),
            "==",
            measured == expected,
        )
    }

    /// A boolean property that must hold.
    fn holds(&mut self, name: &str, pass: bool) -> bool {
        self.record(
            name,
            if pass { "true" } else { "false" }.to_owned(),
            "true".to_owned(),
            "==",
            pass,
        )
    }

    /// Writes `target/ci/gate_<kind>.json`; best-effort (CI treats a
    /// missing record as the exit status alone).
    fn write(&self, overall_pass: bool) {
        let dir = std::path::Path::new("target/ci");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("benchdiff: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("gate_{}.json", self.kind));
        let checks = self
            .checks
            .iter()
            .map(|c| {
                format!(
                    "    {{ \"name\": \"{}\", \"measured\": {}, \"op\": \"{}\", \
                     \"threshold\": {}, \"pass\": {} }}",
                    json_escape(&c.name),
                    c.measured,
                    c.op,
                    c.threshold,
                    c.pass
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let error = match &self.error {
            Some(msg) => format!(",\n  \"error\": \"{}\"", json_escape(msg)),
            None => String::new(),
        };
        let doc = format!(
            "{{\n  \"kind\": \"{}\",\n  \"pass\": {overall_pass},\n  \"checks\": [\n{checks}\n  ]{error}\n}}\n",
            self.kind
        );
        match std::fs::File::create(&path) {
            Ok(mut file) => {
                if let Err(e) = file.write_all(doc.as_bytes()) {
                    eprintln!("benchdiff: cannot write {}: {e}", path.display());
                } else {
                    eprintln!("benchdiff: gate record written to {}", path.display());
                }
            }
            Err(e) => eprintln!("benchdiff: cannot create {}: {e}", path.display()),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Parallel,
    Kernel,
    Metrics,
    Trace,
    Host,
    Serve,
    Index,
    Obs,
}

struct Args {
    fresh: String,
    /// Absent only for `--kind trace`, which validates a single file.
    baseline: Option<String>,
    kind: Kind,
    min_ratio: f64,
    min_speedup: Option<f64>,
    min_scaling: f64,
    /// `--workers N`: worker tracks a trace must name (trace kind only).
    workers: Option<usize>,
}

const USAGE: &str = "usage: benchdiff <fresh.json> <baseline.json> \
     [--kind parallel|kernel|metrics|host|serve|index] [--min-ratio R] [--min-speedup S] \
     [--min-scaling C] | benchdiff <trace.json> --kind trace [--workers N] | \
     benchdiff <fresh_serve.json> <exposition.txt> --kind obs";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut kind = Kind::Parallel;
    let mut min_ratio = 0.5;
    let mut min_speedup = None;
    let mut min_scaling = 3.0;
    let mut workers = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--kind" => {
                i += 1;
                kind = match argv.get(i).map(String::as_str) {
                    Some("parallel") => Kind::Parallel,
                    Some("kernel") => Kind::Kernel,
                    Some("metrics") => Kind::Metrics,
                    Some("trace") => Kind::Trace,
                    Some("host") => Kind::Host,
                    Some("serve") => Kind::Serve,
                    Some("index") => Kind::Index,
                    Some("obs") => Kind::Obs,
                    Some(other) => return Err(format!("unknown --kind {other}")),
                    None => return Err("--kind needs a value".to_owned()),
                };
            }
            "--workers" => {
                i += 1;
                let value: usize = argv
                    .get(i)
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --workers: {e}"))?;
                if value == 0 {
                    return Err("invalid --workers: must be positive".to_owned());
                }
                workers = Some(value);
            }
            "--min-ratio" | "--min-speedup" | "--min-scaling" => {
                let flag = argv[i].clone();
                i += 1;
                let value: f64 = argv
                    .get(i)
                    .ok_or(format!("{flag} needs a value"))?
                    .parse()
                    .map_err(|e| format!("invalid {flag}: {e}"))?;
                if !value.is_finite() || value <= 0.0 {
                    return Err(format!("invalid {flag}: must be positive"));
                }
                match flag.as_str() {
                    "--min-ratio" => min_ratio = value,
                    "--min-speedup" => min_speedup = Some(value),
                    _ => min_scaling = value,
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            _ => positional.push(argv[i].clone()),
        }
        i += 1;
    }
    let (fresh, baseline) = match (kind, positional.as_slice()) {
        (Kind::Trace, [fresh]) => (fresh.clone(), None),
        (Kind::Trace, _) => return Err(USAGE.to_owned()),
        (_, [fresh, baseline]) => (fresh.clone(), Some(baseline.clone())),
        _ => return Err(USAGE.to_owned()),
    };
    Ok(Args {
        fresh,
        baseline,
        kind,
        min_ratio,
        min_speedup,
        min_scaling,
        workers,
    })
}

fn load(path: &str) -> Result<Value, String> {
    json::parse_file(path)
}

/// The baseline path; parse_args guarantees it for every kind but trace.
fn baseline_path(args: &Args) -> &str {
    args.baseline.as_deref().expect("baseline present")
}

/// `(threads, reads_per_s)` rows of the `shared_platform` table.
fn throughput_rows(doc: &Value, path: &str) -> Result<Vec<(u64, f64)>, String> {
    let rows = doc
        .get("shared_platform")
        .and_then(Value::as_array)
        .ok_or(format!("{path}: missing shared_platform array"))?;
    rows.iter()
        .map(|row| {
            let threads = row
                .get("threads")
                .and_then(Value::as_u64)
                .ok_or(format!("{path}: row missing threads"))?;
            let rps = row
                .get("reads_per_s")
                .and_then(Value::as_f64)
                .ok_or(format!("{path}: row missing reads_per_s"))?;
            Ok((threads, rps))
        })
        .collect()
}

fn required_f64(doc: &Value, field: &str, path: &str) -> Result<f64, String> {
    doc.get(field)
        .and_then(Value::as_f64)
        .ok_or(format!("{path}: missing {field}"))
}

/// The scaling floor the fresh report must clear: thread scaling can
/// never exceed the physical core count, so the configured floor is
/// capped at 75 % of `min(host_cores, 8)`; on a single-core host the
/// check degrades to "threading must not cost more than 40 %".
fn effective_scaling_floor(configured: f64, host_cores: u64) -> f64 {
    if host_cores < 2 {
        return 0.6;
    }
    configured.min(0.75 * host_cores.min(8) as f64)
}

fn run_parallel(args: &Args, gate: &mut Gate) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(baseline_path(args))?;
    let fresh_rows = throughput_rows(&fresh, &args.fresh)?;
    let base_rows = throughput_rows(&baseline, baseline_path(args))?;

    let mut ok = true;
    let mut compared = 0;
    for &(threads, fresh_rps) in &fresh_rows {
        let Some(&(_, base_rps)) = base_rows.iter().find(|&&(t, _)| t == threads) else {
            continue;
        };
        compared += 1;
        let ratio = fresh_rps / base_rps;
        let verdict = if ratio >= args.min_ratio {
            "ok"
        } else {
            "REGRESSION"
        };
        eprintln!(
            "benchdiff: {threads} thread(s): {fresh_rps:.0} vs {base_rps:.0} reads/s \
             (ratio {ratio:.2}, floor {:.2}) {verdict}",
            args.min_ratio
        );
        ok &= gate.ge(
            &format!("throughput_ratio_t{threads}"),
            ratio,
            args.min_ratio,
        );
    }
    if compared == 0 {
        return Err("no common thread counts between fresh and baseline".to_owned());
    }

    let speedup = required_f64(&fresh, "speedup_8_threads_vs_seed_style", &args.fresh)?;
    let min_speedup = args.min_speedup.unwrap_or(2.0);
    let verdict = if speedup >= min_speedup {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: shared-platform speedup {speedup:.1}x (floor {min_speedup:.1}x) {verdict}"
    );
    ok &= gate.ge("speedup_8_threads_vs_seed_style", speedup, min_speedup);

    let scaling = required_f64(&fresh, "scaling_8_vs_1", &args.fresh)?;
    let host_cores = fresh
        .get("host_cores")
        .and_then(Value::as_u64)
        .ok_or(format!("{}: missing host_cores", args.fresh))?;
    let floor = effective_scaling_floor(args.min_scaling, host_cores);
    let verdict = if scaling >= floor { "ok" } else { "REGRESSION" };
    eprintln!(
        "benchdiff: 8-vs-1 thread scaling {scaling:.2}x on {host_cores} core(s) \
         (effective floor {floor:.2}x, configured {:.2}x) {verdict}",
        args.min_scaling
    );
    ok &= gate.ge("scaling_8_vs_1", scaling, floor);
    Ok(ok)
}

fn run_kernel(args: &Args, gate: &mut Gate) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(baseline_path(args))?;
    let mut ok = true;

    let speedup = required_f64(&fresh, "speedup_vs_reference", &args.fresh)?;
    let min_speedup = args.min_speedup.unwrap_or(5.0);
    let verdict = if speedup >= min_speedup {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: packed-kernel speedup {speedup:.1}x vs reference \
         (floor {min_speedup:.1}x) {verdict}"
    );
    ok &= gate.ge("speedup_vs_reference", speedup, min_speedup);

    let packed_mlfm = |doc: &Value, path: &str| -> Result<f64, String> {
        doc.get("packed")
            .and_then(|p| p.get("mlfm_per_s"))
            .and_then(Value::as_f64)
            .ok_or(format!("{path}: missing packed.mlfm_per_s"))
    };
    let fresh_mlfm = packed_mlfm(&fresh, &args.fresh)?;
    let base_mlfm = packed_mlfm(&baseline, baseline_path(args))?;
    let ratio = fresh_mlfm / base_mlfm;
    let verdict = if ratio >= args.min_ratio {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: packed kernel {fresh_mlfm:.2} vs {base_mlfm:.2} Mlfm/s \
         (ratio {ratio:.2}, floor {:.2}) {verdict}",
        args.min_ratio
    );
    ok &= gate.ge("packed_mlfm_ratio", ratio, args.min_ratio);

    // Interleaved-batch kernel: the width-8 batch must clear its own
    // speedup floor over the single-read path, measured on this host by
    // the same kernelbench run (fresh side only — the floor is absolute,
    // not relative to the baseline file).
    let batch_speedup = required_f64(&fresh, "batch.speedup_at_8", &args.fresh)?;
    const MIN_BATCH_SPEEDUP: f64 = 2.0;
    let verdict = if batch_speedup >= MIN_BATCH_SPEEDUP {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: batched kernel {batch_speedup:.2}x at width 8 \
         (floor {MIN_BATCH_SPEEDUP:.1}x) {verdict}"
    );
    ok &= gate.ge("batch.speedup_at_8", batch_speedup, MIN_BATCH_SPEEDUP);

    // Pd pipeline overlap: the Pd = 2 scheduler must finish the same
    // issue schedule in strictly fewer simulated cycles than Pd = 1.
    let pd1 = required_u64(&fresh, "pipeline.pd1_makespan_cycles", &args.fresh)?;
    let pd2 = required_u64(&fresh, "pipeline.pd2_makespan_cycles", &args.fresh)?;
    let verdict = if pd2 < pd1 { "ok" } else { "REGRESSION" };
    eprintln!("benchdiff: pipeline makespan Pd=2 {pd2} vs Pd=1 {pd1} simulated cycles {verdict}");
    ok &= gate.record(
        "pipeline.pd2_makespan_lt_pd1",
        pd2.to_string(),
        pd1.to_string(),
        "<",
        pd2 < pd1,
    );

    // SIMD + rank-checkpoint cache: the cached auto path must beat the
    // scalar (PR-8) path on the repeat-dense single-read sweep when a
    // SIMD lane dispatched; on a portable-only host the floor degrades
    // to "must not cost more than ~10 %". Fresh side only — the floor
    // is a property of this host's run, not of the baseline file.
    let simd_field = |field: &str| -> Result<f64, String> {
        fresh
            .get("simd")
            .and_then(|s| s.get(field))
            .and_then(Value::as_f64)
            .ok_or(format!("{}: missing simd.{field}", args.fresh))
    };
    let path = fresh
        .get("simd")
        .and_then(|s| s.get("dispatched_path"))
        .and_then(Value::as_str)
        .ok_or(format!("{}: missing simd.dispatched_path", args.fresh))?;
    let simd_speedup = simd_field("speedup_vs_scalar")?;
    let simd_floor = if matches!(path, "avx2" | "sse2") {
        1.2
    } else {
        0.9
    };
    let verdict = if simd_speedup >= simd_floor {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: simd[{path}] cached lfm {simd_speedup:.2}x vs scalar \
         (floor {simd_floor:.1}x) {verdict}"
    );
    ok &= gate.ge("simd.speedup_vs_scalar", simd_speedup, simd_floor);

    // The rank-checkpoint cache must actually fire on the repeat-dense
    // sweep: a zero hit-rate means the cache key or the memoised window
    // regressed even if the timing floor still happens to pass.
    let hit_rate = fresh
        .get("simd")
        .and_then(|s| s.get("cache"))
        .and_then(|c| c.get("hit_rate"))
        .and_then(Value::as_f64)
        .ok_or(format!("{}: missing simd.cache.hit_rate", args.fresh))?;
    let verdict = if hit_rate > 0.0 { "ok" } else { "REGRESSION" };
    eprintln!("benchdiff: kernel cache hit rate {hit_rate:.3} (must be > 0) {verdict}");
    ok &= gate.record(
        "simd.cache.hit_rate",
        json_f64(hit_rate),
        json_f64(0.0),
        ">",
        hit_rate > 0.0,
    );
    Ok(ok)
}

/// Compares the schema fingerprints of two documents, reporting every
/// path present on one side only. `strip_host` drops `host.`-prefixed
/// paths first — host telemetry may be live in one file and redacted in
/// the other (the committed metrics baseline zeroes it for
/// determinism), and its histogram/worker sub-shapes vary with count.
fn fingerprints_match(
    fresh: &Value,
    baseline: &Value,
    fresh_path: &str,
    base_path: &str,
    strip_host: bool,
) -> bool {
    let paths = |doc: &Value| -> Vec<String> {
        doc.schema_paths()
            .into_iter()
            .filter(|p| !strip_host || !(p == "host" || p.starts_with("host.")))
            .collect()
    };
    let fresh_paths = paths(fresh);
    let base_paths = paths(baseline);
    let mut ok = true;
    for p in &fresh_paths {
        if !base_paths.contains(p) {
            eprintln!("benchdiff: SCHEMA: {p} present in {fresh_path} only");
            ok = false;
        }
    }
    for p in &base_paths {
        if !fresh_paths.contains(p) {
            eprintln!("benchdiff: SCHEMA: {p} present in {base_path} only");
            ok = false;
        }
    }
    if ok {
        eprintln!(
            "benchdiff: schema fingerprint matches ({} paths{})",
            fresh_paths.len(),
            if strip_host { ", host.* ignored" } else { "" }
        );
    }
    ok
}

fn required_u64(doc: &Value, field: &str, path: &str) -> Result<u64, String> {
    doc.get(field)
        .and_then(Value::as_u64)
        .ok_or(format!("{path}: missing {field}"))
}

fn run_metrics(args: &Args, gate: &mut Gate) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(baseline_path(args))?;
    let fp = fingerprints_match(&fresh, &baseline, &args.fresh, baseline_path(args), true);
    let mut ok = gate.holds("schema_fingerprint", fp);

    let schema = required_u64(&fresh, "schema_version", &args.fresh)?;
    let base_schema = required_u64(&baseline, "schema_version", baseline_path(args))?;
    if schema != base_schema {
        eprintln!("benchdiff: SCHEMA: version {schema} vs baseline {base_schema}");
    }
    ok &= gate.eq_u64("schema_version", schema, base_schema);

    // Simulated-cycle invariants, re-derived from the fresh run; these
    // hold for any workload size, so a `--quick` run checks them too.
    let prim = required_u64(&fresh, "breakdown.primitive_cycles_total", &args.fresh)?;
    let busy = required_u64(&fresh, "breakdown.total_busy_cycles", &args.fresh)?;
    if prim != busy {
        eprintln!("benchdiff: INVARIANT: primitive cycles {prim} != ledger total {busy}");
    }
    ok &= gate.eq_u64("primitive_cycles_reconcile", prim, busy);
    let phase_sum: u64 = ["exact", "inexact", "recovery_retry", "recovery_escalate"]
        .iter()
        .map(|leg| {
            required_u64(
                &fresh,
                &format!("breakdown.lfm_by_phase.{leg}"),
                &args.fresh,
            )
        })
        .sum::<Result<u64, String>>()?;
    let lfm_calls = required_u64(&fresh, "report.lfm_calls", &args.fresh)?;
    if phase_sum != lfm_calls {
        eprintln!("benchdiff: INVARIANT: phase LFMs {phase_sum} != total LFM calls {lfm_calls}");
    }
    ok &= gate.eq_u64("lfm_phase_attribution", phase_sum, lfm_calls);
    let zones = required_u64(&fresh, "breakdown.heatmap.zones", &args.fresh)?;
    let activations = fresh
        .get("breakdown.heatmap.activations")
        .and_then(Value::as_array)
        .ok_or(format!(
            "{}: missing breakdown.heatmap.activations",
            args.fresh
        ))?;
    if activations.len() as u64 != zones {
        eprintln!(
            "benchdiff: INVARIANT: heatmap declares {zones} zones but lists {}",
            activations.len()
        );
    }
    ok &= gate.eq_u64("heatmap_zone_count", activations.len() as u64, zones);
    let heat_total: u64 = activations.iter().filter_map(Value::as_u64).sum();
    let subarray = required_u64(&fresh, "breakdown.subarray_activations", &args.fresh)?;
    if heat_total > subarray {
        eprintln!(
            "benchdiff: INVARIANT: heatmap total {heat_total} exceeds \
             sub-array activations {subarray}"
        );
    }
    ok &= gate.record(
        "heatmap_within_activations",
        heat_total.to_string(),
        subarray.to_string(),
        "<=",
        heat_total <= subarray,
    );
    eprintln!(
        "benchdiff: metrics v{schema}: {busy} busy cycles reconcile, \
         {lfm_calls} LFMs attributed, heatmap {heat_total}/{subarray} activations"
    );
    Ok(ok)
}

fn run_trace(args: &Args, gate: &mut Gate) -> Result<bool, String> {
    let doc = load(&args.fresh)?;
    let unit_ok = doc.get("displayTimeUnit").and_then(Value::as_str) == Some("ms");
    if !unit_ok {
        eprintln!("benchdiff: TRACE: missing displayTimeUnit \"ms\"");
    }
    let mut ok = gate.holds("display_time_unit_ms", unit_ok);
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or(format!("{}: missing traceEvents array", args.fresh))?;

    let mut complete = 0usize;
    let mut malformed = 0usize;
    let mut unexpected = 0usize;
    let mut tracks = Vec::new();
    for (i, event) in events.iter().enumerate() {
        match event.get("ph").and_then(Value::as_str) {
            Some("X") => {
                let well_formed = event.get("name").and_then(Value::as_str).is_some()
                    && event.get("tid").and_then(Value::as_u64).is_some()
                    && event.get("ts").and_then(Value::as_f64).is_some()
                    && event
                        .get("dur")
                        .and_then(Value::as_f64)
                        .is_some_and(|d| d >= 0.0);
                if !well_formed {
                    eprintln!("benchdiff: TRACE: event {i} is not a well-formed complete span");
                    malformed += 1;
                }
                complete += 1;
            }
            Some("M") => {
                if event.get("name").and_then(Value::as_str) == Some("thread_name") {
                    if let Some(track) = event.get("args.name").and_then(Value::as_str) {
                        tracks.push(track.to_owned());
                    }
                }
            }
            _ => {
                eprintln!("benchdiff: TRACE: event {i} has an unexpected phase");
                unexpected += 1;
            }
        }
    }
    ok &= gate.eq_u64("malformed_spans", malformed as u64, 0);
    ok &= gate.eq_u64("unexpected_phases", unexpected as u64, 0);
    if complete == 0 {
        eprintln!("benchdiff: TRACE: no complete (\"X\") spans");
    }
    ok &= gate.record(
        "complete_spans",
        complete.to_string(),
        "0".to_owned(),
        ">",
        complete > 0,
    );
    if let Some(workers) = args.workers {
        let mut missing = 0usize;
        for w in 0..workers {
            let want = format!("worker-{w}");
            if !tracks.contains(&want) {
                eprintln!("benchdiff: TRACE: no thread_name track for {want}");
                missing += 1;
            }
        }
        ok &= gate.eq_u64("missing_worker_tracks", missing as u64, 0);
    }
    eprintln!(
        "benchdiff: trace carries {complete} span(s) across {} named track(s)",
        tracks.len()
    );
    Ok(ok)
}

fn run_host(args: &Args, gate: &mut Gate) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(baseline_path(args))?;
    let fp = fingerprints_match(&fresh, &baseline, &args.fresh, baseline_path(args), false);
    let mut ok = gate.holds("schema_fingerprint", fp);

    // Host numbers are wall-clock and can't be diffed against the
    // baseline; instead the fresh run must be internally consistent.
    let threads = required_u64(&fresh, "threads", &args.fresh)?;
    let read_count = required_u64(&fresh, "workload.read_count", &args.fresh)?;
    let workers = fresh
        .get("host.workers")
        .and_then(Value::as_array)
        .ok_or(format!("{}: missing host.workers", args.fresh))?;
    if workers.len() as u64 != threads {
        eprintln!(
            "benchdiff: HOST: {} worker row(s) for {threads} thread(s)",
            workers.len()
        );
    }
    ok &= gate.eq_u64("worker_rows", workers.len() as u64, threads);
    let worker_reads: u64 = workers
        .iter()
        .filter_map(|w| w.get("reads").and_then(Value::as_u64))
        .sum();
    if worker_reads != read_count {
        eprintln!("benchdiff: HOST: workers claim {worker_reads} reads of {read_count}");
    }
    ok &= gate.eq_u64("worker_read_sum", worker_reads, read_count);
    let samples = required_u64(&fresh, "host.per_read_latency.count", &args.fresh)?;
    if samples != read_count {
        eprintln!("benchdiff: HOST: {samples} per-read samples for {read_count} reads");
    }
    ok &= gate.eq_u64("per_read_samples", samples, read_count);
    let wall_ns = required_u64(&fresh, "host.wall_ns", &args.fresh)?;
    if wall_ns == 0 {
        eprintln!("benchdiff: HOST: parallel-region wall clock is zero");
    }
    ok &= gate.record(
        "wall_clock_positive",
        wall_ns.to_string(),
        "0".to_owned(),
        ">",
        wall_ns > 0,
    );
    let balance = required_f64(&fresh, "load_balance_pct", &args.fresh)?;
    let balance_ok = balance > 0.0 && balance <= 100.0;
    if !balance_ok {
        eprintln!("benchdiff: HOST: load balance {balance}% outside (0, 100]");
    }
    ok &= gate.record(
        "load_balance_pct",
        json_f64(balance),
        "\"(0, 100]\"".to_owned(),
        "in",
        balance_ok,
    );
    eprintln!(
        "benchdiff: host run: {read_count} reads over {threads} worker(s), \
         load balance {balance:.1}%"
    );
    Ok(ok)
}

/// One phase row of a `loadgen` report: every request offered in the
/// phase must have reached a terminal outcome.
fn check_serve_row(row: &Value, label: &str, path: &str) -> Result<bool, String> {
    let field = |name: &str| -> Result<u64, String> {
        row.get(name)
            .and_then(Value::as_u64)
            .ok_or(format!("{path}: {label} row missing {name}"))
    };
    let sent = field("sent")?;
    let answered = field("answered")?;
    if sent == 0 {
        eprintln!("benchdiff: SERVE: {label} phase sent nothing");
        return Ok(false);
    }
    if answered != sent {
        eprintln!("benchdiff: SERVE: {label} phase lost requests ({answered} answered of {sent})");
        return Ok(false);
    }
    Ok(true)
}

fn run_serve(args: &Args, gate: &mut Gate) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(baseline_path(args))?;
    let fp = fingerprints_match(&fresh, &baseline, &args.fresh, baseline_path(args), false);
    let mut ok = gate.holds("schema_fingerprint", fp);

    let schema = required_u64(&fresh, "schema_version", &args.fresh)?;
    let base_schema = required_u64(&baseline, "schema_version", baseline_path(args))?;
    if schema != base_schema {
        eprintln!("benchdiff: SCHEMA: version {schema} vs baseline {base_schema}");
    }
    ok &= gate.eq_u64("schema_version", schema, base_schema);

    // Rates and latencies are wall-clock; the invariants below are
    // re-derived from the fresh run and hold on any machine.
    let sweep = fresh
        .get("sweep")
        .and_then(Value::as_array)
        .ok_or(format!("{}: missing sweep array", args.fresh))?;
    if sweep.is_empty() {
        eprintln!("benchdiff: SERVE: empty sweep");
    }
    ok &= gate.record(
        "sweep_rows",
        sweep.len().to_string(),
        "0".to_owned(),
        ">",
        !sweep.is_empty(),
    );
    let mut rows_ok = true;
    for (i, row) in sweep.iter().enumerate() {
        rows_ok &= check_serve_row(row, &format!("sweep[{i}]"), &args.fresh)?;
    }
    ok &= gate.holds("sweep_rows_accounted", rows_ok);
    let overload = fresh
        .get("overload")
        .ok_or(format!("{}: missing overload row", args.fresh))?;
    let overload_ok = check_serve_row(overload, "overload", &args.fresh)?;
    ok &= gate.holds("overload_accounted", overload_ok);

    let knee = required_u64(&fresh, "knee_rps", &args.fresh)?;
    if knee == 0 {
        eprintln!("benchdiff: SERVE: no saturation knee found");
    }
    ok &= gate.record("knee_rps", knee.to_string(), "0".to_owned(), ">", knee > 0);
    let overload_rps = required_u64(&fresh, "overload.target_rps", &args.fresh)?;
    if overload_rps < 2 * knee {
        eprintln!(
            "benchdiff: SERVE: overload phase at {overload_rps} rps is under 2x the \
             knee ({knee} rps)"
        );
    }
    ok &= gate.record(
        "overload_target_rps",
        overload_rps.to_string(),
        (2 * knee).to_string(),
        ">=",
        overload_rps >= 2 * knee,
    );
    let shed = required_u64(&fresh, "overload.shed_responses", &args.fresh)?;
    if shed == 0 {
        eprintln!("benchdiff: SERVE: overload phase never shed — admission control inert");
    }
    ok &= gate.record(
        "overload_shed_responses",
        shed.to_string(),
        "0".to_owned(),
        ">",
        shed > 0,
    );
    let p99 = required_f64(&fresh, "overload.p99_ms", &args.fresh)?;
    let slo = required_f64(&fresh, "slo_ms", &args.fresh)?;
    if p99 > slo {
        eprintln!(
            "benchdiff: SERVE: accepted-request p99 {p99:.1} ms breaches the \
             {slo:.1} ms SLO under overload"
        );
    }
    ok &= gate.le("overload_p99_ms", p99, slo);
    eprintln!(
        "benchdiff: serve run: knee {knee} rps, overload {overload_rps} rps shed \
         {shed} request(s), accepted p99 {p99:.1} ms (SLO {slo:.1} ms)"
    );
    Ok(ok)
}

/// The shared counters the obs gate reconciles between the lifetime
/// `service` section and the ring-derived `cumulative` aggregate of a
/// loadgen report's `obs` block.
const OBS_COUNTERS: [&str; 11] = [
    "received",
    "accepted",
    "shed_queue_full",
    "shed_inflight_bytes",
    "rejected_draining",
    "rejected_invalid",
    "expired_in_queue",
    "late_responses",
    "panics_quarantined",
    "batches",
    "responses",
];

/// Is `name` a legal Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`)?
fn prom_name_ok(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One non-comment exposition line: `name value` or `name{labels} value`
/// with a finite float value. Returns `false` on any malformation.
fn prom_sample_ok(line: &str) -> bool {
    let Some((metric, value)) = line.rsplit_once(' ') else {
        return false;
    };
    if !value.parse::<f64>().is_ok_and(f64::is_finite) {
        return false;
    }
    match metric.split_once('{') {
        Some((name, labels)) => prom_name_ok(name) && labels.ends_with('}'),
        None => prom_name_ok(metric),
    }
}

fn run_obs(args: &Args, gate: &mut Gate) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let prom_path = baseline_path(args);
    let prom_text = std::fs::read_to_string(prom_path).map_err(|e| format!("{prom_path}: {e}"))?;
    let mut ok = true;

    // The exposition answered mid-overload: loadgen's scraper polled the
    // Stats verb while the queue saturated, so a zero count means the
    // inline never-shed path regressed.
    let scrapes = required_u64(&fresh, "obs.scrapes", &args.fresh)?;
    if scrapes == 0 {
        eprintln!("benchdiff: OBS: no Stats scrapes landed mid-run");
    }
    ok &= gate.record(
        "stats_scrapes",
        scrapes.to_string(),
        "0".to_owned(),
        ">",
        scrapes > 0,
    );

    // Exact reconciliation: the rolling ring's retired ⊕ live aggregate
    // must equal the lifetime counters field-for-field. Any drift means
    // an event bypassed the single critical section.
    for name in OBS_COUNTERS {
        let lifetime = required_u64(&fresh, &format!("obs.lifetime.{name}"), &args.fresh)?;
        let cumulative = required_u64(&fresh, &format!("obs.cumulative.{name}"), &args.fresh)?;
        if cumulative != lifetime {
            eprintln!(
                "benchdiff: OBS: {name} drifted — ring cumulative {cumulative} vs \
                 lifetime {lifetime}"
            );
        }
        ok &= gate.eq_u64(&format!("reconcile_{name}"), cumulative, lifetime);
    }

    let max_rps = required_f64(&fresh, "obs.max_rps_10s", &args.fresh)?;
    if max_rps <= 0.0 {
        eprintln!("benchdiff: OBS: the 10s window never saw throughput");
    }
    ok &= gate.record(
        "max_rps_10s",
        json_f64(max_rps),
        json_f64(0.0),
        ">",
        max_rps > 0.0,
    );

    let stalls = required_u64(&fresh, "obs.watchdog.stalls", &args.fresh)?;
    if stalls != 0 {
        eprintln!("benchdiff: OBS: watchdog tripped {stalls} stall episode(s) on a healthy run");
    }
    ok &= gate.eq_u64("watchdog_quiet", stalls, 0);

    // Exposition well-formedness (text format 0.0.4).
    let mut samples = 0u64;
    let mut help = 0u64;
    let mut types = 0u64;
    let mut bad_lines = 0u64;
    for (i, line) in prom_text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            if comment.starts_with("HELP ") {
                help += 1;
            } else if let Some(rest) = comment.strip_prefix("TYPE ") {
                types += 1;
                let declared = rest.split_whitespace().nth(1);
                if !declared
                    .is_some_and(|k| matches!(k, "counter" | "gauge" | "histogram" | "summary"))
                {
                    eprintln!("benchdiff: OBS: exposition line {i}: unknown TYPE {declared:?}");
                    bad_lines += 1;
                }
            } else {
                eprintln!("benchdiff: OBS: exposition line {i}: comment is neither HELP nor TYPE");
                bad_lines += 1;
            }
            continue;
        }
        if prom_sample_ok(line) {
            samples += 1;
        } else {
            eprintln!("benchdiff: OBS: exposition line {i} malformed: {line:?}");
            bad_lines += 1;
        }
    }
    ok &= gate.eq_u64("prom_malformed_lines", bad_lines, 0);
    ok &= gate.record(
        "prom_samples",
        samples.to_string(),
        "0".to_owned(),
        ">",
        samples > 0,
    );
    ok &= gate.holds("prom_help_and_type_present", help > 0 && types > 0);
    eprintln!(
        "benchdiff: obs run: {scrapes} scrape(s), peak 10s window {max_rps:.0} rps, \
         {} counters reconcile, exposition {samples} sample(s) ({help} HELP, {types} TYPE)",
        OBS_COUNTERS.len()
    );
    Ok(ok)
}

fn run_index(args: &Args, gate: &mut Gate) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(baseline_path(args))?;
    let fp = fingerprints_match(&fresh, &baseline, &args.fresh, baseline_path(args), false);
    let mut ok = gate.holds("schema_fingerprint", fp);

    // Build and load are both wall-clock, but their ratio comes from one
    // machine and one run — the whole point of the artifact is that the
    // load path skips SA-IS, so the ratio is gated strictly.
    let speedup = required_f64(&fresh, "largest.load_speedup", &args.fresh)?;
    let genome = required_u64(&fresh, "largest.genome_len", &args.fresh)?;
    let min_speedup = args.min_speedup.unwrap_or(5.0);
    let verdict = if speedup >= min_speedup {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: artifact load {speedup:.1}x faster than rebuild at {genome} bp \
         (floor {min_speedup:.1}x) {verdict}"
    );
    ok &= gate.ge("load_speedup", speedup, min_speedup);

    let sam_identical = fresh
        .get("sam_identical")
        .and_then(Value::as_bool)
        .ok_or(format!("{}: missing sam_identical", args.fresh))?;
    if !sam_identical {
        eprintln!("benchdiff: INDEX: sharded SAM diverged from the unsharded platform");
    }
    ok &= gate.holds("sam_identical", sam_identical);

    let rel_err = required_f64(&fresh, "footprint_max_rel_err", &args.fresh)?;
    if rel_err > 1e-3 {
        eprintln!(
            "benchdiff: INDEX: serialised footprint off the size model by {:.3} % \
             (tolerance 0.1 %)",
            rel_err * 100.0
        );
    }
    ok &= gate.le("footprint_max_rel_err", rel_err, 1e-3);

    // Bytes-per-base is deterministic for a given geometry, so a drift
    // beyond 5 % against the committed baseline means the serialised
    // layout (or the accounting) changed without a baseline regen.
    let sweep_rows = |doc: &Value, path: &str| -> Result<Vec<(u64, u64, f64)>, String> {
        let rows = doc
            .get("sweep")
            .and_then(Value::as_array)
            .ok_or(format!("{path}: missing sweep array"))?;
        rows.iter()
            .map(|row| {
                let field = |name: &str| {
                    row.get(name)
                        .and_then(Value::as_u64)
                        .ok_or(format!("{path}: sweep row missing {name}"))
                };
                let bpb = row
                    .get("bytes_per_bp")
                    .and_then(Value::as_f64)
                    .ok_or(format!("{path}: sweep row missing bytes_per_bp"))?;
                Ok((field("genome_len")?, field("sa_rate")?, bpb))
            })
            .collect()
    };
    let fresh_rows = sweep_rows(&fresh, &args.fresh)?;
    let base_rows = sweep_rows(&baseline, baseline_path(args))?;
    let mut compared = 0;
    let mut max_drift = 0.0f64;
    for &(genome_len, sa_rate, fresh_bpb) in &fresh_rows {
        let Some(&(_, _, base_bpb)) = base_rows
            .iter()
            .find(|&&(g, r, _)| g == genome_len && r == sa_rate)
        else {
            continue;
        };
        compared += 1;
        let drift = (fresh_bpb / base_bpb - 1.0).abs();
        max_drift = max_drift.max(drift);
        if drift > 0.05 {
            eprintln!(
                "benchdiff: INDEX: {genome_len} bp @ SA rate {sa_rate}: {fresh_bpb:.4} vs \
                 baseline {base_bpb:.4} bytes/bp ({:.1} % drift, tolerance 5 %)",
                drift * 100.0
            );
        }
    }
    ok &= gate.le("bytes_per_bp_max_drift", max_drift, 0.05);
    eprintln!(
        "benchdiff: index run: {} sweep row(s) ({compared} vs baseline), sharded SAM {}, \
         footprint err {:.2e}",
        fresh_rows.len(),
        if sam_identical {
            "identical"
        } else {
            "DIVERGED"
        },
        rel_err
    );
    Ok(ok)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("benchdiff: {msg}");
            return ExitCode::from(2);
        }
    };
    let kind_name = match args.kind {
        Kind::Parallel => "parallel",
        Kind::Kernel => "kernel",
        Kind::Metrics => "metrics",
        Kind::Trace => "trace",
        Kind::Host => "host",
        Kind::Serve => "serve",
        Kind::Index => "index",
        Kind::Obs => "obs",
    };
    let mut gate = Gate::new(kind_name);
    let outcome = match args.kind {
        Kind::Parallel => run_parallel(&args, &mut gate),
        Kind::Kernel => run_kernel(&args, &mut gate),
        Kind::Metrics => run_metrics(&args, &mut gate),
        Kind::Trace => run_trace(&args, &mut gate),
        Kind::Host => run_host(&args, &mut gate),
        Kind::Serve => run_serve(&args, &mut gate),
        Kind::Index => run_index(&args, &mut gate),
        Kind::Obs => run_obs(&args, &mut gate),
    };
    if let Err(msg) = &outcome {
        gate.error = Some(msg.clone());
    }
    gate.write(matches!(outcome, Ok(true)));
    match outcome {
        Ok(true) => {
            eprintln!("benchdiff: within tolerance");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("benchdiff: regression beyond tolerance");
            ExitCode::from(1)
        }
        Err(msg) => {
            eprintln!("benchdiff: {msg}");
            ExitCode::from(2)
        }
    }
}
