//! `benchdiff` — the bench-regression gate.
//!
//! ```text
//! benchdiff <fresh.json> <baseline.json> [--kind parallel|kernel]
//!           [--min-ratio R] [--min-speedup S] [--min-scaling C]
//! ```
//!
//! Compares a freshly measured bench JSON report against the checked-in
//! baseline and exits non-zero when throughput regressed beyond
//! tolerance. CI runs `parbench --quick` and `kernelbench --quick` and
//! feeds their outputs here (see `ci.sh`), so a change that slows the
//! shared-platform engine, breaks the index-sharing speedup, or gives
//! back the packed-kernel speedup fails the build.
//!
//! `--kind parallel` (default) checks, in order:
//!
//! * both files parse and carry the `parbench` shape;
//! * for every thread count present in both `shared_platform` tables,
//!   `fresh.reads_per_s ≥ R × baseline.reads_per_s` (default `R` 0.5 —
//!   wall-clock throughput on shared CI machines is noisy, and when the
//!   fresh run is `--quick` against the full-size baseline the workloads
//!   differ, so this is a broad-regression tripwire, not a benchmark);
//! * `fresh.speedup_8_threads_vs_seed_style ≥ S` (default `S` 2.0): the
//!   build-the-index-once speedup must survive regardless of machine
//!   speed — it is a ratio of two runs on the same machine;
//! * `fresh.scaling_8_vs_1` against a **core-aware** floor derived from
//!   `C` (default 3.0) and the report's `host_cores`: thread scaling is
//!   physically bounded by the cores present, so the effective floor is
//!   `min(C, 0.75 × min(host_cores, 8))` on multi-core machines and a
//!   plain non-degradation check (0.6×) on a single core, where
//!   parallelism cannot yield speedup at all.
//!
//! `--kind kernel` checks the `kernelbench` shape:
//!
//! * `fresh.speedup_vs_reference ≥ S` (default `S` 5.0) — the packed
//!   kernel's advantage over the boolean reference, a same-machine
//!   ratio and therefore the strict check;
//! * `fresh.packed.mlfm_per_s ≥ R × baseline.packed.mlfm_per_s`
//!   (default `R` 0.5) — the broad machine-speed tripwire.
//!
//! Exit status: 0 within tolerance, 1 regression detected, 2 usage or
//! parse error.

use std::process::ExitCode;

use bench::json::{self, Value};

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Parallel,
    Kernel,
}

struct Args {
    fresh: String,
    baseline: String,
    kind: Kind,
    min_ratio: f64,
    min_speedup: Option<f64>,
    min_scaling: f64,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut kind = Kind::Parallel;
    let mut min_ratio = 0.5;
    let mut min_speedup = None;
    let mut min_scaling = 3.0;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--kind" => {
                i += 1;
                kind = match argv.get(i).map(String::as_str) {
                    Some("parallel") => Kind::Parallel,
                    Some("kernel") => Kind::Kernel,
                    Some(other) => return Err(format!("unknown --kind {other}")),
                    None => return Err("--kind needs a value".to_owned()),
                };
            }
            "--min-ratio" | "--min-speedup" | "--min-scaling" => {
                let flag = argv[i].clone();
                i += 1;
                let value: f64 = argv
                    .get(i)
                    .ok_or(format!("{flag} needs a value"))?
                    .parse()
                    .map_err(|e| format!("invalid {flag}: {e}"))?;
                if !value.is_finite() || value <= 0.0 {
                    return Err(format!("invalid {flag}: must be positive"));
                }
                match flag.as_str() {
                    "--min-ratio" => min_ratio = value,
                    "--min-speedup" => min_speedup = Some(value),
                    _ => min_scaling = value,
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            _ => positional.push(argv[i].clone()),
        }
        i += 1;
    }
    let [fresh, baseline] = positional.as_slice() else {
        return Err(
            "usage: benchdiff <fresh.json> <baseline.json> [--kind parallel|kernel] \
             [--min-ratio R] [--min-speedup S] [--min-scaling C]"
                .to_owned(),
        );
    };
    Ok(Args {
        fresh: fresh.clone(),
        baseline: baseline.clone(),
        kind,
        min_ratio,
        min_speedup,
        min_scaling,
    })
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// `(threads, reads_per_s)` rows of the `shared_platform` table.
fn throughput_rows(doc: &Value, path: &str) -> Result<Vec<(u64, f64)>, String> {
    let rows = doc
        .get("shared_platform")
        .and_then(Value::as_array)
        .ok_or(format!("{path}: missing shared_platform array"))?;
    rows.iter()
        .map(|row| {
            let threads = row
                .get("threads")
                .and_then(Value::as_u64)
                .ok_or(format!("{path}: row missing threads"))?;
            let rps = row
                .get("reads_per_s")
                .and_then(Value::as_f64)
                .ok_or(format!("{path}: row missing reads_per_s"))?;
            Ok((threads, rps))
        })
        .collect()
}

fn required_f64(doc: &Value, field: &str, path: &str) -> Result<f64, String> {
    doc.get(field)
        .and_then(Value::as_f64)
        .ok_or(format!("{path}: missing {field}"))
}

/// The scaling floor the fresh report must clear: thread scaling can
/// never exceed the physical core count, so the configured floor is
/// capped at 75 % of `min(host_cores, 8)`; on a single-core host the
/// check degrades to "threading must not cost more than 40 %".
fn effective_scaling_floor(configured: f64, host_cores: u64) -> f64 {
    if host_cores < 2 {
        return 0.6;
    }
    configured.min(0.75 * host_cores.min(8) as f64)
}

fn run_parallel(args: &Args) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(&args.baseline)?;
    let fresh_rows = throughput_rows(&fresh, &args.fresh)?;
    let base_rows = throughput_rows(&baseline, &args.baseline)?;

    let mut ok = true;
    let mut compared = 0;
    for &(threads, fresh_rps) in &fresh_rows {
        let Some(&(_, base_rps)) = base_rows.iter().find(|&&(t, _)| t == threads) else {
            continue;
        };
        compared += 1;
        let ratio = fresh_rps / base_rps;
        let verdict = if ratio >= args.min_ratio {
            "ok"
        } else {
            "REGRESSION"
        };
        eprintln!(
            "benchdiff: {threads} thread(s): {fresh_rps:.0} vs {base_rps:.0} reads/s \
             (ratio {ratio:.2}, floor {:.2}) {verdict}",
            args.min_ratio
        );
        if ratio < args.min_ratio {
            ok = false;
        }
    }
    if compared == 0 {
        return Err("no common thread counts between fresh and baseline".to_owned());
    }

    let speedup = required_f64(&fresh, "speedup_8_threads_vs_seed_style", &args.fresh)?;
    let min_speedup = args.min_speedup.unwrap_or(2.0);
    let verdict = if speedup >= min_speedup {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: shared-platform speedup {speedup:.1}x (floor {min_speedup:.1}x) {verdict}"
    );
    if speedup < min_speedup {
        ok = false;
    }

    let scaling = required_f64(&fresh, "scaling_8_vs_1", &args.fresh)?;
    let host_cores = fresh
        .get("host_cores")
        .and_then(Value::as_u64)
        .ok_or(format!("{}: missing host_cores", args.fresh))?;
    let floor = effective_scaling_floor(args.min_scaling, host_cores);
    let verdict = if scaling >= floor { "ok" } else { "REGRESSION" };
    eprintln!(
        "benchdiff: 8-vs-1 thread scaling {scaling:.2}x on {host_cores} core(s) \
         (effective floor {floor:.2}x, configured {:.2}x) {verdict}",
        args.min_scaling
    );
    if scaling < floor {
        ok = false;
    }
    Ok(ok)
}

fn run_kernel(args: &Args) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(&args.baseline)?;
    let mut ok = true;

    let speedup = required_f64(&fresh, "speedup_vs_reference", &args.fresh)?;
    let min_speedup = args.min_speedup.unwrap_or(5.0);
    let verdict = if speedup >= min_speedup {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: packed-kernel speedup {speedup:.1}x vs reference \
         (floor {min_speedup:.1}x) {verdict}"
    );
    if speedup < min_speedup {
        ok = false;
    }

    let packed_mlfm = |doc: &Value, path: &str| -> Result<f64, String> {
        doc.get("packed")
            .and_then(|p| p.get("mlfm_per_s"))
            .and_then(Value::as_f64)
            .ok_or(format!("{path}: missing packed.mlfm_per_s"))
    };
    let fresh_mlfm = packed_mlfm(&fresh, &args.fresh)?;
    let base_mlfm = packed_mlfm(&baseline, &args.baseline)?;
    let ratio = fresh_mlfm / base_mlfm;
    let verdict = if ratio >= args.min_ratio {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: packed kernel {fresh_mlfm:.2} vs {base_mlfm:.2} Mlfm/s \
         (ratio {ratio:.2}, floor {:.2}) {verdict}",
        args.min_ratio
    );
    if ratio < args.min_ratio {
        ok = false;
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("benchdiff: {msg}");
            return ExitCode::from(2);
        }
    };
    let outcome = match args.kind {
        Kind::Parallel => run_parallel(&args),
        Kind::Kernel => run_kernel(&args),
    };
    match outcome {
        Ok(true) => {
            eprintln!("benchdiff: within tolerance");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("benchdiff: throughput regression beyond tolerance");
            ExitCode::from(1)
        }
        Err(msg) => {
            eprintln!("benchdiff: {msg}");
            ExitCode::from(2)
        }
    }
}
