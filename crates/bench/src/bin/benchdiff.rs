//! `benchdiff` — the bench-regression gate.
//!
//! ```text
//! benchdiff <fresh.json> <baseline.json> [--kind parallel|kernel|metrics|host|serve|index]
//!           [--min-ratio R] [--min-speedup S] [--min-scaling C]
//! benchdiff <trace.json> --kind trace [--workers N]
//! ```
//!
//! Compares a freshly measured bench JSON report against the checked-in
//! baseline and exits non-zero when throughput regressed beyond
//! tolerance. CI runs `parbench --quick` and `kernelbench --quick` and
//! feeds their outputs here (see `ci.sh`), so a change that slows the
//! shared-platform engine, breaks the index-sharing speedup, or gives
//! back the packed-kernel speedup fails the build.
//!
//! `--kind parallel` (default) checks, in order:
//!
//! * both files parse and carry the `parbench` shape;
//! * for every thread count present in both `shared_platform` tables,
//!   `fresh.reads_per_s ≥ R × baseline.reads_per_s` (default `R` 0.5 —
//!   wall-clock throughput on shared CI machines is noisy, and when the
//!   fresh run is `--quick` against the full-size baseline the workloads
//!   differ, so this is a broad-regression tripwire, not a benchmark);
//! * `fresh.speedup_8_threads_vs_seed_style ≥ S` (default `S` 2.0): the
//!   build-the-index-once speedup must survive regardless of machine
//!   speed — it is a ratio of two runs on the same machine;
//! * `fresh.scaling_8_vs_1` against a **core-aware** floor derived from
//!   `C` (default 3.0) and the report's `host_cores`: thread scaling is
//!   physically bounded by the cores present, so the effective floor is
//!   `min(C, 0.75 × min(host_cores, 8))` on multi-core machines and a
//!   plain non-degradation check (0.6×) on a single core, where
//!   parallelism cannot yield speedup at all.
//!
//! `--kind kernel` checks the `kernelbench` shape:
//!
//! * `fresh.speedup_vs_reference ≥ S` (default `S` 5.0) — the packed
//!   kernel's advantage over the boolean reference, a same-machine
//!   ratio and therefore the strict check;
//! * `fresh.packed.mlfm_per_s ≥ R × baseline.packed.mlfm_per_s`
//!   (default `R` 0.5) — the broad machine-speed tripwire.
//!
//! `--kind metrics` diffs a fresh `perfdump`-shaped metrics document
//! against the committed `BENCH_metrics.json`. Host wall-clock numbers
//! are nondeterministic, so the check is structural-plus-invariants,
//! never a byte diff of host fields:
//!
//! * the schema fingerprints ([`Value::schema_paths`]) must match after
//!   dropping every `host.`-prefixed path — the `host` section may be
//!   live in one file and redacted in the other;
//! * fresh simulated-cycle invariants must hold: primitive cycles
//!   reconcile with the ledger total, phase attribution covers every
//!   `LFM`, and the zone heatmap never exceeds the sub-array activation
//!   count (zone notes are a *view* of existing charges, not new ones).
//!
//! `--kind trace` validates a Chrome trace-event file (one positional):
//! it must parse, carry `displayTimeUnit: "ms"`, contain at least one
//! complete (`"X"`) span with `name`/`tid`/`ts`/`dur`, and — when
//! `--workers N` is given — name a `worker-i` track for every
//! `i < N` via `thread_name` metadata, whether or not that worker
//! claimed work.
//!
//! `--kind host` diffs a fresh `hostbench` report against the committed
//! `BENCH_host.json`: schema fingerprints must match exactly, and the
//! fresh run must be self-consistent (one per-read latency sample per
//! read, one worker row per thread, worker read counts summing to the
//! workload, a positive parallel-region wall clock, and a load-balance
//! percentage within (0, 100]).
//!
//! `--kind serve` diffs a fresh `loadgen` report against the committed
//! `BENCH_serve.json`. Rates and latencies are machine-dependent, so
//! the check is structural-plus-invariants: schema fingerprints must
//! match (sweep row counts may differ — rows dedupe by shape), and the
//! fresh run must show a working overload story — every request in
//! every phase accounted for (`answered == sent`), a positive
//! saturation knee, an overload phase at ≥ 2x the knee that actually
//! shed, and an accepted-request p99 within the report's own SLO.
//!
//! `--kind index` diffs a fresh `indexbench` report against the
//! committed `BENCH_index.json`. Timings are wall-clock, so only ratios
//! and exact byte counts are gated:
//!
//! * schema fingerprints must match (sweep rows dedupe by shape);
//! * `largest.load_speedup ≥ S` (default `S` 5.0) — loading the
//!   serialised artifact must beat rebuilding the index at the largest
//!   swept genome, a same-machine ratio and therefore strict;
//! * `sam_identical` must be `true` — sharded alignment is only
//!   admissible while its merged SAM is byte-identical to the
//!   unsharded platform's;
//! * `footprint_max_rel_err ≤ 0.1 %` — the serialised footprint must
//!   reconcile with the `size_model` prediction (the two share exact
//!   byte accounting; slack covers only future fixed-overhead fields);
//! * per-genome `bytes_per_bp` within ±5 % of the baseline row with the
//!   same geometry — a size-accounting tripwire.
//!
//! Exit status: 0 within tolerance, 1 regression detected, 2 usage or
//! parse error.

use std::process::ExitCode;

use bench::json::{self, Value};

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Parallel,
    Kernel,
    Metrics,
    Trace,
    Host,
    Serve,
    Index,
}

struct Args {
    fresh: String,
    /// Absent only for `--kind trace`, which validates a single file.
    baseline: Option<String>,
    kind: Kind,
    min_ratio: f64,
    min_speedup: Option<f64>,
    min_scaling: f64,
    /// `--workers N`: worker tracks a trace must name (trace kind only).
    workers: Option<usize>,
}

const USAGE: &str = "usage: benchdiff <fresh.json> <baseline.json> \
     [--kind parallel|kernel|metrics|host|serve|index] [--min-ratio R] [--min-speedup S] \
     [--min-scaling C] | benchdiff <trace.json> --kind trace [--workers N]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut kind = Kind::Parallel;
    let mut min_ratio = 0.5;
    let mut min_speedup = None;
    let mut min_scaling = 3.0;
    let mut workers = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--kind" => {
                i += 1;
                kind = match argv.get(i).map(String::as_str) {
                    Some("parallel") => Kind::Parallel,
                    Some("kernel") => Kind::Kernel,
                    Some("metrics") => Kind::Metrics,
                    Some("trace") => Kind::Trace,
                    Some("host") => Kind::Host,
                    Some("serve") => Kind::Serve,
                    Some("index") => Kind::Index,
                    Some(other) => return Err(format!("unknown --kind {other}")),
                    None => return Err("--kind needs a value".to_owned()),
                };
            }
            "--workers" => {
                i += 1;
                let value: usize = argv
                    .get(i)
                    .ok_or("--workers needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid --workers: {e}"))?;
                if value == 0 {
                    return Err("invalid --workers: must be positive".to_owned());
                }
                workers = Some(value);
            }
            "--min-ratio" | "--min-speedup" | "--min-scaling" => {
                let flag = argv[i].clone();
                i += 1;
                let value: f64 = argv
                    .get(i)
                    .ok_or(format!("{flag} needs a value"))?
                    .parse()
                    .map_err(|e| format!("invalid {flag}: {e}"))?;
                if !value.is_finite() || value <= 0.0 {
                    return Err(format!("invalid {flag}: must be positive"));
                }
                match flag.as_str() {
                    "--min-ratio" => min_ratio = value,
                    "--min-speedup" => min_speedup = Some(value),
                    _ => min_scaling = value,
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag}")),
            _ => positional.push(argv[i].clone()),
        }
        i += 1;
    }
    let (fresh, baseline) = match (kind, positional.as_slice()) {
        (Kind::Trace, [fresh]) => (fresh.clone(), None),
        (Kind::Trace, _) => return Err(USAGE.to_owned()),
        (_, [fresh, baseline]) => (fresh.clone(), Some(baseline.clone())),
        _ => return Err(USAGE.to_owned()),
    };
    Ok(Args {
        fresh,
        baseline,
        kind,
        min_ratio,
        min_speedup,
        min_scaling,
        workers,
    })
}

fn load(path: &str) -> Result<Value, String> {
    json::parse_file(path)
}

/// The baseline path; parse_args guarantees it for every kind but trace.
fn baseline_path(args: &Args) -> &str {
    args.baseline.as_deref().expect("baseline present")
}

/// `(threads, reads_per_s)` rows of the `shared_platform` table.
fn throughput_rows(doc: &Value, path: &str) -> Result<Vec<(u64, f64)>, String> {
    let rows = doc
        .get("shared_platform")
        .and_then(Value::as_array)
        .ok_or(format!("{path}: missing shared_platform array"))?;
    rows.iter()
        .map(|row| {
            let threads = row
                .get("threads")
                .and_then(Value::as_u64)
                .ok_or(format!("{path}: row missing threads"))?;
            let rps = row
                .get("reads_per_s")
                .and_then(Value::as_f64)
                .ok_or(format!("{path}: row missing reads_per_s"))?;
            Ok((threads, rps))
        })
        .collect()
}

fn required_f64(doc: &Value, field: &str, path: &str) -> Result<f64, String> {
    doc.get(field)
        .and_then(Value::as_f64)
        .ok_or(format!("{path}: missing {field}"))
}

/// The scaling floor the fresh report must clear: thread scaling can
/// never exceed the physical core count, so the configured floor is
/// capped at 75 % of `min(host_cores, 8)`; on a single-core host the
/// check degrades to "threading must not cost more than 40 %".
fn effective_scaling_floor(configured: f64, host_cores: u64) -> f64 {
    if host_cores < 2 {
        return 0.6;
    }
    configured.min(0.75 * host_cores.min(8) as f64)
}

fn run_parallel(args: &Args) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(baseline_path(args))?;
    let fresh_rows = throughput_rows(&fresh, &args.fresh)?;
    let base_rows = throughput_rows(&baseline, baseline_path(args))?;

    let mut ok = true;
    let mut compared = 0;
    for &(threads, fresh_rps) in &fresh_rows {
        let Some(&(_, base_rps)) = base_rows.iter().find(|&&(t, _)| t == threads) else {
            continue;
        };
        compared += 1;
        let ratio = fresh_rps / base_rps;
        let verdict = if ratio >= args.min_ratio {
            "ok"
        } else {
            "REGRESSION"
        };
        eprintln!(
            "benchdiff: {threads} thread(s): {fresh_rps:.0} vs {base_rps:.0} reads/s \
             (ratio {ratio:.2}, floor {:.2}) {verdict}",
            args.min_ratio
        );
        if ratio < args.min_ratio {
            ok = false;
        }
    }
    if compared == 0 {
        return Err("no common thread counts between fresh and baseline".to_owned());
    }

    let speedup = required_f64(&fresh, "speedup_8_threads_vs_seed_style", &args.fresh)?;
    let min_speedup = args.min_speedup.unwrap_or(2.0);
    let verdict = if speedup >= min_speedup {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: shared-platform speedup {speedup:.1}x (floor {min_speedup:.1}x) {verdict}"
    );
    if speedup < min_speedup {
        ok = false;
    }

    let scaling = required_f64(&fresh, "scaling_8_vs_1", &args.fresh)?;
    let host_cores = fresh
        .get("host_cores")
        .and_then(Value::as_u64)
        .ok_or(format!("{}: missing host_cores", args.fresh))?;
    let floor = effective_scaling_floor(args.min_scaling, host_cores);
    let verdict = if scaling >= floor { "ok" } else { "REGRESSION" };
    eprintln!(
        "benchdiff: 8-vs-1 thread scaling {scaling:.2}x on {host_cores} core(s) \
         (effective floor {floor:.2}x, configured {:.2}x) {verdict}",
        args.min_scaling
    );
    if scaling < floor {
        ok = false;
    }
    Ok(ok)
}

fn run_kernel(args: &Args) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(baseline_path(args))?;
    let mut ok = true;

    let speedup = required_f64(&fresh, "speedup_vs_reference", &args.fresh)?;
    let min_speedup = args.min_speedup.unwrap_or(5.0);
    let verdict = if speedup >= min_speedup {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: packed-kernel speedup {speedup:.1}x vs reference \
         (floor {min_speedup:.1}x) {verdict}"
    );
    if speedup < min_speedup {
        ok = false;
    }

    let packed_mlfm = |doc: &Value, path: &str| -> Result<f64, String> {
        doc.get("packed")
            .and_then(|p| p.get("mlfm_per_s"))
            .and_then(Value::as_f64)
            .ok_or(format!("{path}: missing packed.mlfm_per_s"))
    };
    let fresh_mlfm = packed_mlfm(&fresh, &args.fresh)?;
    let base_mlfm = packed_mlfm(&baseline, baseline_path(args))?;
    let ratio = fresh_mlfm / base_mlfm;
    let verdict = if ratio >= args.min_ratio {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: packed kernel {fresh_mlfm:.2} vs {base_mlfm:.2} Mlfm/s \
         (ratio {ratio:.2}, floor {:.2}) {verdict}",
        args.min_ratio
    );
    if ratio < args.min_ratio {
        ok = false;
    }
    Ok(ok)
}

/// Compares the schema fingerprints of two documents, reporting every
/// path present on one side only. `strip_host` drops `host.`-prefixed
/// paths first — host telemetry may be live in one file and redacted in
/// the other (the committed metrics baseline zeroes it for
/// determinism), and its histogram/worker sub-shapes vary with count.
fn fingerprints_match(
    fresh: &Value,
    baseline: &Value,
    fresh_path: &str,
    base_path: &str,
    strip_host: bool,
) -> bool {
    let paths = |doc: &Value| -> Vec<String> {
        doc.schema_paths()
            .into_iter()
            .filter(|p| !strip_host || !(p == "host" || p.starts_with("host.")))
            .collect()
    };
    let fresh_paths = paths(fresh);
    let base_paths = paths(baseline);
    let mut ok = true;
    for p in &fresh_paths {
        if !base_paths.contains(p) {
            eprintln!("benchdiff: SCHEMA: {p} present in {fresh_path} only");
            ok = false;
        }
    }
    for p in &base_paths {
        if !fresh_paths.contains(p) {
            eprintln!("benchdiff: SCHEMA: {p} present in {base_path} only");
            ok = false;
        }
    }
    if ok {
        eprintln!(
            "benchdiff: schema fingerprint matches ({} paths{})",
            fresh_paths.len(),
            if strip_host { ", host.* ignored" } else { "" }
        );
    }
    ok
}

fn required_u64(doc: &Value, field: &str, path: &str) -> Result<u64, String> {
    doc.get(field)
        .and_then(Value::as_u64)
        .ok_or(format!("{path}: missing {field}"))
}

fn run_metrics(args: &Args) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(baseline_path(args))?;
    let mut ok = fingerprints_match(&fresh, &baseline, &args.fresh, baseline_path(args), true);

    let schema = required_u64(&fresh, "schema_version", &args.fresh)?;
    let base_schema = required_u64(&baseline, "schema_version", baseline_path(args))?;
    if schema != base_schema {
        eprintln!("benchdiff: SCHEMA: version {schema} vs baseline {base_schema}");
        ok = false;
    }

    // Simulated-cycle invariants, re-derived from the fresh run; these
    // hold for any workload size, so a `--quick` run checks them too.
    let prim = required_u64(&fresh, "breakdown.primitive_cycles_total", &args.fresh)?;
    let busy = required_u64(&fresh, "breakdown.total_busy_cycles", &args.fresh)?;
    if prim != busy {
        eprintln!("benchdiff: INVARIANT: primitive cycles {prim} != ledger total {busy}");
        ok = false;
    }
    let phase_sum: u64 = ["exact", "inexact", "recovery_retry", "recovery_escalate"]
        .iter()
        .map(|leg| {
            required_u64(
                &fresh,
                &format!("breakdown.lfm_by_phase.{leg}"),
                &args.fresh,
            )
        })
        .sum::<Result<u64, String>>()?;
    let lfm_calls = required_u64(&fresh, "report.lfm_calls", &args.fresh)?;
    if phase_sum != lfm_calls {
        eprintln!("benchdiff: INVARIANT: phase LFMs {phase_sum} != total LFM calls {lfm_calls}");
        ok = false;
    }
    let zones = required_u64(&fresh, "breakdown.heatmap.zones", &args.fresh)?;
    let activations = fresh
        .get("breakdown.heatmap.activations")
        .and_then(Value::as_array)
        .ok_or(format!(
            "{}: missing breakdown.heatmap.activations",
            args.fresh
        ))?;
    if activations.len() as u64 != zones {
        eprintln!(
            "benchdiff: INVARIANT: heatmap declares {zones} zones but lists {}",
            activations.len()
        );
        ok = false;
    }
    let heat_total: u64 = activations.iter().filter_map(Value::as_u64).sum();
    let subarray = required_u64(&fresh, "breakdown.subarray_activations", &args.fresh)?;
    if heat_total > subarray {
        eprintln!(
            "benchdiff: INVARIANT: heatmap total {heat_total} exceeds \
             sub-array activations {subarray}"
        );
        ok = false;
    }
    eprintln!(
        "benchdiff: metrics v{schema}: {busy} busy cycles reconcile, \
         {lfm_calls} LFMs attributed, heatmap {heat_total}/{subarray} activations"
    );
    Ok(ok)
}

fn run_trace(args: &Args) -> Result<bool, String> {
    let doc = load(&args.fresh)?;
    let mut ok = true;

    if doc.get("displayTimeUnit").and_then(Value::as_str) != Some("ms") {
        eprintln!("benchdiff: TRACE: missing displayTimeUnit \"ms\"");
        ok = false;
    }
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or(format!("{}: missing traceEvents array", args.fresh))?;

    let mut complete = 0usize;
    let mut tracks = Vec::new();
    for (i, event) in events.iter().enumerate() {
        match event.get("ph").and_then(Value::as_str) {
            Some("X") => {
                let well_formed = event.get("name").and_then(Value::as_str).is_some()
                    && event.get("tid").and_then(Value::as_u64).is_some()
                    && event.get("ts").and_then(Value::as_f64).is_some()
                    && event
                        .get("dur")
                        .and_then(Value::as_f64)
                        .is_some_and(|d| d >= 0.0);
                if !well_formed {
                    eprintln!("benchdiff: TRACE: event {i} is not a well-formed complete span");
                    ok = false;
                }
                complete += 1;
            }
            Some("M") => {
                if event.get("name").and_then(Value::as_str) == Some("thread_name") {
                    if let Some(track) = event.get("args.name").and_then(Value::as_str) {
                        tracks.push(track.to_owned());
                    }
                }
            }
            _ => {
                eprintln!("benchdiff: TRACE: event {i} has an unexpected phase");
                ok = false;
            }
        }
    }
    if complete == 0 {
        eprintln!("benchdiff: TRACE: no complete (\"X\") spans");
        ok = false;
    }
    if let Some(workers) = args.workers {
        for w in 0..workers {
            let want = format!("worker-{w}");
            if !tracks.contains(&want) {
                eprintln!("benchdiff: TRACE: no thread_name track for {want}");
                ok = false;
            }
        }
    }
    eprintln!(
        "benchdiff: trace carries {complete} span(s) across {} named track(s)",
        tracks.len()
    );
    Ok(ok)
}

fn run_host(args: &Args) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(baseline_path(args))?;
    let mut ok = fingerprints_match(&fresh, &baseline, &args.fresh, baseline_path(args), false);

    // Host numbers are wall-clock and can't be diffed against the
    // baseline; instead the fresh run must be internally consistent.
    let threads = required_u64(&fresh, "threads", &args.fresh)?;
    let read_count = required_u64(&fresh, "workload.read_count", &args.fresh)?;
    let workers = fresh
        .get("host.workers")
        .and_then(Value::as_array)
        .ok_or(format!("{}: missing host.workers", args.fresh))?;
    if workers.len() as u64 != threads {
        eprintln!(
            "benchdiff: HOST: {} worker row(s) for {threads} thread(s)",
            workers.len()
        );
        ok = false;
    }
    let worker_reads: u64 = workers
        .iter()
        .filter_map(|w| w.get("reads").and_then(Value::as_u64))
        .sum();
    if worker_reads != read_count {
        eprintln!("benchdiff: HOST: workers claim {worker_reads} reads of {read_count}");
        ok = false;
    }
    let samples = required_u64(&fresh, "host.per_read_latency.count", &args.fresh)?;
    if samples != read_count {
        eprintln!("benchdiff: HOST: {samples} per-read samples for {read_count} reads");
        ok = false;
    }
    let wall_ns = required_u64(&fresh, "host.wall_ns", &args.fresh)?;
    if wall_ns == 0 {
        eprintln!("benchdiff: HOST: parallel-region wall clock is zero");
        ok = false;
    }
    let balance = required_f64(&fresh, "load_balance_pct", &args.fresh)?;
    if !(balance > 0.0 && balance <= 100.0) {
        eprintln!("benchdiff: HOST: load balance {balance}% outside (0, 100]");
        ok = false;
    }
    eprintln!(
        "benchdiff: host run: {read_count} reads over {threads} worker(s), \
         load balance {balance:.1}%"
    );
    Ok(ok)
}

/// One phase row of a `loadgen` report: every request offered in the
/// phase must have reached a terminal outcome.
fn check_serve_row(row: &Value, label: &str, path: &str) -> Result<bool, String> {
    let field = |name: &str| -> Result<u64, String> {
        row.get(name)
            .and_then(Value::as_u64)
            .ok_or(format!("{path}: {label} row missing {name}"))
    };
    let sent = field("sent")?;
    let answered = field("answered")?;
    if sent == 0 {
        eprintln!("benchdiff: SERVE: {label} phase sent nothing");
        return Ok(false);
    }
    if answered != sent {
        eprintln!("benchdiff: SERVE: {label} phase lost requests ({answered} answered of {sent})");
        return Ok(false);
    }
    Ok(true)
}

fn run_serve(args: &Args) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(baseline_path(args))?;
    let mut ok = fingerprints_match(&fresh, &baseline, &args.fresh, baseline_path(args), false);

    let schema = required_u64(&fresh, "schema_version", &args.fresh)?;
    let base_schema = required_u64(&baseline, "schema_version", baseline_path(args))?;
    if schema != base_schema {
        eprintln!("benchdiff: SCHEMA: version {schema} vs baseline {base_schema}");
        ok = false;
    }

    // Rates and latencies are wall-clock; the invariants below are
    // re-derived from the fresh run and hold on any machine.
    let sweep = fresh
        .get("sweep")
        .and_then(Value::as_array)
        .ok_or(format!("{}: missing sweep array", args.fresh))?;
    if sweep.is_empty() {
        eprintln!("benchdiff: SERVE: empty sweep");
        ok = false;
    }
    for (i, row) in sweep.iter().enumerate() {
        ok &= check_serve_row(row, &format!("sweep[{i}]"), &args.fresh)?;
    }
    let overload = fresh
        .get("overload")
        .ok_or(format!("{}: missing overload row", args.fresh))?;
    ok &= check_serve_row(overload, "overload", &args.fresh)?;

    let knee = required_u64(&fresh, "knee_rps", &args.fresh)?;
    if knee == 0 {
        eprintln!("benchdiff: SERVE: no saturation knee found");
        ok = false;
    }
    let overload_rps = required_u64(&fresh, "overload.target_rps", &args.fresh)?;
    if overload_rps < 2 * knee {
        eprintln!(
            "benchdiff: SERVE: overload phase at {overload_rps} rps is under 2x the \
             knee ({knee} rps)"
        );
        ok = false;
    }
    let shed = required_u64(&fresh, "overload.shed_responses", &args.fresh)?;
    if shed == 0 {
        eprintln!("benchdiff: SERVE: overload phase never shed — admission control inert");
        ok = false;
    }
    let p99 = required_f64(&fresh, "overload.p99_ms", &args.fresh)?;
    let slo = required_f64(&fresh, "slo_ms", &args.fresh)?;
    if p99 > slo {
        eprintln!(
            "benchdiff: SERVE: accepted-request p99 {p99:.1} ms breaches the \
             {slo:.1} ms SLO under overload"
        );
        ok = false;
    }
    eprintln!(
        "benchdiff: serve run: knee {knee} rps, overload {overload_rps} rps shed \
         {shed} request(s), accepted p99 {p99:.1} ms (SLO {slo:.1} ms)"
    );
    Ok(ok)
}

fn run_index(args: &Args) -> Result<bool, String> {
    let fresh = load(&args.fresh)?;
    let baseline = load(baseline_path(args))?;
    let mut ok = fingerprints_match(&fresh, &baseline, &args.fresh, baseline_path(args), false);

    // Build and load are both wall-clock, but their ratio comes from one
    // machine and one run — the whole point of the artifact is that the
    // load path skips SA-IS, so the ratio is gated strictly.
    let speedup = required_f64(&fresh, "largest.load_speedup", &args.fresh)?;
    let genome = required_u64(&fresh, "largest.genome_len", &args.fresh)?;
    let min_speedup = args.min_speedup.unwrap_or(5.0);
    let verdict = if speedup >= min_speedup {
        "ok"
    } else {
        "REGRESSION"
    };
    eprintln!(
        "benchdiff: artifact load {speedup:.1}x faster than rebuild at {genome} bp \
         (floor {min_speedup:.1}x) {verdict}"
    );
    if speedup < min_speedup {
        ok = false;
    }

    let sam_identical = fresh
        .get("sam_identical")
        .and_then(Value::as_bool)
        .ok_or(format!("{}: missing sam_identical", args.fresh))?;
    if !sam_identical {
        eprintln!("benchdiff: INDEX: sharded SAM diverged from the unsharded platform");
        ok = false;
    }

    let rel_err = required_f64(&fresh, "footprint_max_rel_err", &args.fresh)?;
    if rel_err > 1e-3 {
        eprintln!(
            "benchdiff: INDEX: serialised footprint off the size model by {:.3} % \
             (tolerance 0.1 %)",
            rel_err * 100.0
        );
        ok = false;
    }

    // Bytes-per-base is deterministic for a given geometry, so a drift
    // beyond 5 % against the committed baseline means the serialised
    // layout (or the accounting) changed without a baseline regen.
    let sweep_rows = |doc: &Value, path: &str| -> Result<Vec<(u64, u64, f64)>, String> {
        let rows = doc
            .get("sweep")
            .and_then(Value::as_array)
            .ok_or(format!("{path}: missing sweep array"))?;
        rows.iter()
            .map(|row| {
                let field = |name: &str| {
                    row.get(name)
                        .and_then(Value::as_u64)
                        .ok_or(format!("{path}: sweep row missing {name}"))
                };
                let bpb = row
                    .get("bytes_per_bp")
                    .and_then(Value::as_f64)
                    .ok_or(format!("{path}: sweep row missing bytes_per_bp"))?;
                Ok((field("genome_len")?, field("sa_rate")?, bpb))
            })
            .collect()
    };
    let fresh_rows = sweep_rows(&fresh, &args.fresh)?;
    let base_rows = sweep_rows(&baseline, baseline_path(args))?;
    let mut compared = 0;
    for &(genome_len, sa_rate, fresh_bpb) in &fresh_rows {
        let Some(&(_, _, base_bpb)) = base_rows
            .iter()
            .find(|&&(g, r, _)| g == genome_len && r == sa_rate)
        else {
            continue;
        };
        compared += 1;
        let drift = (fresh_bpb / base_bpb - 1.0).abs();
        if drift > 0.05 {
            eprintln!(
                "benchdiff: INDEX: {genome_len} bp @ SA rate {sa_rate}: {fresh_bpb:.4} vs \
                 baseline {base_bpb:.4} bytes/bp ({:.1} % drift, tolerance 5 %)",
                drift * 100.0
            );
            ok = false;
        }
    }
    eprintln!(
        "benchdiff: index run: {} sweep row(s) ({compared} vs baseline), sharded SAM {}, \
         footprint err {:.2e}",
        fresh_rows.len(),
        if sam_identical {
            "identical"
        } else {
            "DIVERGED"
        },
        rel_err
    );
    Ok(ok)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("benchdiff: {msg}");
            return ExitCode::from(2);
        }
    };
    let outcome = match args.kind {
        Kind::Parallel => run_parallel(&args),
        Kind::Kernel => run_kernel(&args),
        Kind::Metrics => run_metrics(&args),
        Kind::Trace => run_trace(&args),
        Kind::Host => run_host(&args),
        Kind::Serve => run_serve(&args),
        Kind::Index => run_index(&args),
    };
    match outcome {
        Ok(true) => {
            eprintln!("benchdiff: within tolerance");
            ExitCode::SUCCESS
        }
        Ok(false) => {
            eprintln!("benchdiff: regression beyond tolerance");
            ExitCode::from(1)
        }
        Err(msg) => {
            eprintln!("benchdiff: {msg}");
            ExitCode::from(2)
        }
    }
}
