//! Regenerates every table and figure of the paper's evaluation (§VI).
//!
//! Usage:
//!
//! ```text
//! experiments [fig5b|fig7|fig8|fig9|fig9c|fig10|stages|all]
//! ```
//!
//! Each sub-command prints the figure's data series; `all` (the default)
//! prints everything, in paper order. EXPERIMENTS.md records one run of
//! this binary next to the paper's reported values.

use accel::{figure_series, Figure};
use bench::table::{format_value, render_series, render_table};
use bench::{figure_workload, paper_workload, pim_platform_rows, simulate_config};
use mram::device::CellParams;
use mram::montecarlo;
use pim_aligner::PimAlignerConfig;
use pimsim::pipeline::PipelineParams;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    match which.as_str() {
        "fig5b" => fig5b(),
        "fig7" => fig7(),
        "fig8" => fig8_to_10(&[Figure::PowerFig8a, Figure::ThroughputFig8b]),
        "fig9" => fig8_to_10(&[
            Figure::ThroughputPerWattFig9a,
            Figure::ThroughputPerWattMm2Fig9b,
        ]),
        "fig9c" => fig9c(),
        "fig10" => fig8_to_10(&[
            Figure::OffchipMemoryFig10a,
            Figure::MbrFig10b,
            Figure::RurFig10c,
        ]),
        "stages" => stages(),
        "energy" => energy_breakdown(),
        "all" => {
            fig5b();
            fig7();
            fig8_to_10(&Figure::ALL);
            fig9c();
            stages();
            energy_breakdown();
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; expected fig5b|fig7|fig8|fig9|fig9c|fig10|stages|energy|all"
            );
            std::process::exit(2);
        }
    }
}

/// Fig. 5b: Monte-Carlo V_sense distributions and sense margins.
fn fig5b() {
    let trials = montecarlo::PAPER_TRIALS;
    let report = montecarlo::run(&CellParams::default(), trials, 42);
    println!("Fig. 5b: Monte-Carlo sense margins ({trials} trials, sigma_RA=2%, sigma_TMR=5%)");
    println!("------------------------------------------------------------------------------");
    for panel in &report.panels {
        println!("fan-in {}:", panel.fan_in);
        for level in &panel.levels {
            println!(
                "  {} of {} cells '1': mean {:.2} mV, sigma {:.3} mV, range [{:.2}, {:.2}]",
                level.ones, panel.fan_in, level.mean_mv, level.sigma_mv, level.min_mv, level.max_mv
            );
        }
        for (k, (&m, &p)) in panel.margins_mv.iter().zip(&panel.misread_prob).enumerate() {
            println!(
                "  margin@threshold{}: {:.2} mV (misread prob {:.2e})",
                k, m, p
            );
        }
    }
    let thick = montecarlo::run(&CellParams::default().with_tox_nm(2.0), trials, 42);
    println!(
        "t_ox 1.5 -> 2.0 nm: MAJ margin {:.2} -> {:.2} mV (gain {:.1} mV; paper: ~45 mV)\n",
        report.maj_margin_mv(),
        thick.maj_margin_mv(),
        thick.maj_margin_mv() - report.maj_margin_mv()
    );
}

/// Fig. 7: pipeline behaviour and the ~40 % Pd = 2 gain.
fn fig7() {
    let p = PipelineParams::default();
    println!(
        "Fig. 7: pipeline model (stage A {} cyc, transfer {} cyc, stage B {} cyc)",
        p.stage_a_cycles, p.transfer_cycles, p.stage_b_cycles
    );
    println!("---------------------------------------------------------------------");
    for pd in 1..=4 {
        println!(
            "Pd={pd}: {:.1} cycles/LFM, speed-up {:.3}x",
            p.cycles_per_lfm(pd),
            p.speedup(pd)
        );
    }
    println!(
        "paper: 'pipeline technique with Pd=2 has improved the performance by ~40%' -> measured {:.0}%\n",
        (p.speedup(2) - 1.0) * 100.0
    );
}

/// Figs. 8a/8b/9a/9b/10a/10b/10c: the ten-platform comparison bars.
fn fig8_to_10(figures: &[Figure]) {
    let workload = figure_workload(11);
    let rows = pim_platform_rows(&workload);
    let platforms = rows.full_platform_list();
    for &figure in figures {
        let series = figure_series(figure, &platforms);
        println!("{}", render_series(figure.label(), &series));
    }
}

/// Fig. 9c: power/throughput trade-off vs parallelism degree.
fn fig9c() {
    let workload = figure_workload(13);
    let mut rows = Vec::new();
    for pd in 1..=4 {
        let config = if pd == 1 {
            PimAlignerConfig::baseline()
        } else {
            PimAlignerConfig::pipelined().with_pd(pd)
        };
        let report = simulate_config(&workload, config);
        rows.push(vec![
            pd.to_string(),
            format_value(report.throughput_qps),
            format_value(report.total_power_w),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Fig. 9c: power-throughput trade-off vs Pd (paper: 6.7e6 q/s, 28.4 W at Pd=2)",
            &["Pd", "Throughput (q/s)", "Power (W)"],
            &rows
        )
    );
}

/// Beyond-paper: where the platform's dynamic energy goes, per
/// primitive class.
fn energy_breakdown() {
    let workload = figure_workload(19);
    let mut aligner =
        pim_aligner::PimAligner::new(&workload.reference, PimAlignerConfig::baseline());
    let _ = aligner.align_batch(&workload.reads);
    let model = *aligner.config().model();
    let breakdown = aligner.ledger().energy_breakdown_pj(&model);
    let total: f64 = breakdown.iter().map(|(_, e)| e).sum();
    println!("Energy breakdown per primitive class (PIM-Aligner-n, exact workload)");
    println!("--------------------------------------------------------------------");
    for (op, pj) in breakdown {
        println!(
            "  {:<14} {:>12} pJ  ({:>5.1} %)",
            format!("{op:?}"),
            format_value(pj),
            100.0 * pj / total
        );
    }
    println!("  total          {:>12} pJ\n", format_value(total));
}

/// §III text claim: ~70 % of reads resolve in the exact stage.
fn stages() {
    let workload = paper_workload(17);
    let mut aligner =
        pim_aligner::PimAligner::new(&workload.reference, PimAlignerConfig::baseline());
    let result = aligner.align_batch(&workload.reads);
    let mapped = result.outcomes.iter().filter(|o| o.is_mapped()).count();
    println!("Two-stage alignment on the paper workload (100 bp, 0.2% error, 0.1% variation)");
    println!("------------------------------------------------------------------------------");
    println!(
        "reads {}  mapped {}  exact-stage fraction {:.1}% (paper: 'up to ~70%' resolve in stage 1)\n",
        workload.reads.len(),
        mapped,
        result.exact_fraction * 100.0
    );
}
