//! `hostbench` — host-side runtime-telemetry benchmark.
//!
//! ```text
//! hostbench [--quick] [--out PATH]
//! ```
//!
//! Runs one traced parallel batch (4 workers) over a shared
//! [`Platform`] and summarises what the host-side telemetry layer saw:
//!
//! * wall-clock per-read and per-chunk latency quantiles (the
//!   [`HostHistogram`](pimsim::HostHistogram) log2 buckets);
//! * per-worker utilisation — chunks claimed, steals, busy fraction —
//!   and the mean-over-max load-balance efficiency
//!   ([`accel::scaling::load_balance_efficiency`]);
//! * trace-span counts, including drops.
//!
//! Results are written as JSON (default `BENCH_host.json`) and
//! summarised on stderr. Everything in the report is host wall-clock
//! time — nondeterministic across runs and machines — so the committed
//! baseline is a *structural* reference: `benchdiff --kind host`
//! compares schema fingerprints and re-derives sanity invariants from
//! the fresh run, never raw nanoseconds. `--quick` shrinks the workload
//! for CI smoke runs.

use std::io::Write as _;
use std::time::Instant;

use accel::scaling::load_balance_efficiency;
use bench::workload::Workload;
use pim_aligner::{host_section_json, HostTraceConfig, PimAlignerConfig, Platform};
use pimsim::HostEpoch;

const THREADS: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_host.json".to_owned());

    let (genome_len, read_count) = if quick {
        (40_000, 256)
    } else {
        (200_000, 2048)
    };
    let workload = Workload::clean(genome_len, read_count, 80, 1207);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "hostbench: {} bp reference, {} x 80 bp reads, {} workers, {} host core(s){}",
        genome_len,
        read_count,
        THREADS,
        host_cores,
        if quick { " (quick)" } else { "" }
    );

    // The epoch anchors every span; create it before the index build so
    // the build would land at t ≈ 0 on a trace of this run.
    let epoch = HostEpoch::new();
    let trace = HostTraceConfig::new(epoch);

    let t0 = Instant::now();
    let platform = Platform::new(&workload.reference, PimAlignerConfig::baseline());
    let index_build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let (outcomes, totals) = platform
        .align_chunk_parallel_traced(&workload.reads, THREADS, 0, false, &trace)
        .expect("batch aligns");
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        outcomes.iter().all(|(o, _)| o.is_mapped()),
        "clean workload must map"
    );
    let reads_per_s = read_count as f64 / wall;

    let host = &totals.host;
    assert_eq!(
        host.per_read.count(),
        read_count as u64,
        "one latency sample per read"
    );
    let busy: Vec<u64> = host.workers.iter().map(|w| w.busy_ns).collect();
    let balance = load_balance_efficiency(&busy);
    let mean_busy = host.mean_busy_fraction();
    eprintln!(
        "hostbench: {read_count} reads in {:.1} ms ({reads_per_s:.0} reads/s), \
         index build {index_build_ms:.1} ms",
        wall * 1e3
    );
    eprintln!(
        "hostbench: per-read p50/p90/p99 ≤ {}/{}/{} ns (max {})",
        host.per_read.quantile_upper_ns(0.5),
        host.per_read.quantile_upper_ns(0.9),
        host.per_read.quantile_upper_ns(0.99),
        host.per_read.max_ns()
    );
    for w in &host.workers {
        eprintln!(
            "hostbench: worker {}: {} chunk(s), {} steal(s), {} reads, {:.0}% busy",
            w.worker,
            w.chunks_claimed,
            w.steals,
            w.reads,
            100.0 * w.busy_fraction(host.wall_ns)
        );
    }
    eprintln!(
        "hostbench: load balance {:.0}% (mean/max busy), mean utilisation {:.0}%, \
         {} span(s) kept, {} dropped",
        100.0 * balance,
        100.0 * mean_busy,
        host.spans.len(),
        host.spans_dropped
    );

    // Hand-rolled JSON (the vendored serde_json is an offline stub); the
    // `host` section is the exact object the metrics document embeds.
    let json = format!(
        "{{\n  \"workload\": {{ \"genome_len\": {genome_len}, \"read_count\": {read_count}, \
         \"read_len\": 80, \"seed\": 1207, \"quick\": {quick} }},\n  \
         \"host_cores\": {host_cores},\n  \
         \"threads\": {THREADS},\n  \
         \"index_build_ms\": {index_build_ms:.3},\n  \
         \"align_wall_ms\": {:.3},\n  \
         \"reads_per_s\": {reads_per_s:.1},\n  \
         \"load_balance_pct\": {:.1},\n  \
         \"mean_busy_pct\": {:.1},\n  \
         \"host\": {}\n}}",
        wall * 1e3,
        100.0 * balance,
        100.0 * mean_busy,
        host_section_json(host),
    );
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    writeln!(file, "{json}").unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("hostbench: wrote {out_path}");
}
