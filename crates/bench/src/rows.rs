//! Bridging the simulator to the figure rows: runs PIM-Aligner-n and
//! PIM-Aligner-p on a workload and converts their reports into
//! [`accel::Platform`] entries.

use accel::{Platform, PlatformClass};
use pim_aligner::{PerfReport, PimAligner, PimAlignerConfig};

use crate::workload::Workload;

/// The two simulated PIM-Aligner rows plus their raw reports.
#[derive(Debug, Clone)]
pub struct PimRows {
    /// PIM-Aligner-n (baseline) as a figure row.
    pub baseline: Platform,
    /// PIM-Aligner-p (Pd = 2) as a figure row.
    pub pipelined: Platform,
    /// Raw baseline report.
    pub baseline_report: PerfReport,
    /// Raw pipelined report.
    pub pipelined_report: PerfReport,
}

/// Runs one configuration over the workload and returns its report.
pub fn simulate_config(workload: &Workload, config: PimAlignerConfig) -> PerfReport {
    let mut aligner = PimAligner::new(&workload.reference, config);
    aligner.align_batch(&workload.reads).report
}

/// Converts a report into a figure row.
fn to_platform(name: &str, report: &PerfReport) -> Platform {
    Platform::from_measurements(
        name,
        PlatformClass::FmIndex,
        report.total_power_w,
        report.throughput_qps,
        report.area_mm2,
        report.offchip_gb,
        report.mbr_pct,
        report.rur_pct,
    )
}

/// Simulates both paper configurations on the workload.
pub fn pim_platform_rows(workload: &Workload) -> PimRows {
    let baseline_report = simulate_config(workload, PimAlignerConfig::baseline());
    let pipelined_report = simulate_config(workload, PimAlignerConfig::pipelined());
    PimRows {
        baseline: to_platform("PIM-Aligner-n", &baseline_report),
        pipelined: to_platform("PIM-Aligner-p", &pipelined_report),
        baseline_report,
        pipelined_report,
    }
}

impl PimRows {
    /// The full ten-platform list in the paper's figure order (the eight
    /// published accelerators followed by the two PIM-Aligner variants).
    pub fn full_platform_list(&self) -> Vec<Platform> {
        let mut list = accel::catalog();
        list.push(self.baseline.clone());
        list.push(self.pipelined.clone());
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;

    fn rows() -> PimRows {
        // Small but representative: two sub-arrays, both stages hit.
        let w = Workload::clean(60_000, 40, 100, 7);
        pim_platform_rows(&w)
    }

    #[test]
    fn produces_ten_platform_list() {
        let r = rows();
        let list = r.full_platform_list();
        assert_eq!(list.len(), 10);
        assert_eq!(list[8].name, "PIM-Aligner-n");
        assert_eq!(list[9].name, "PIM-Aligner-p");
    }

    #[test]
    fn pipelined_row_beats_baseline_throughput() {
        let r = rows();
        assert!(r.pipelined.throughput_qps > r.baseline.throughput_qps);
        assert!(r.pipelined.power_w > r.baseline.power_w);
    }

    #[test]
    fn simulated_rows_reproduce_headline_ratios() {
        // The paper's headline claims, end to end from the simulator:
        // 3.1× T/W over RaceLogic, ~2× over ASIC, ~9×/1.9× area-normalised.
        let r = rows();
        let catalog = accel::catalog();
        let tpw = |name: &str| {
            catalog
                .iter()
                .find(|p| p.name == name)
                .unwrap()
                .throughput_per_watt()
        };
        let pim = r.baseline.throughput_per_watt();
        let race = pim / tpw("RaceLogic");
        assert!((2.5..3.8).contains(&race), "RaceLogic ratio {race:.2}");
        let asic = pim / tpw("ASIC");
        assert!((1.6..2.6).contains(&asic), "ASIC ratio {asic:.2}");
    }
}
