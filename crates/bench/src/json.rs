//! A minimal JSON reader for the bench tooling.
//!
//! The workspace's vendored `serde_json` is an offline stub, so the
//! tools that *consume* bench JSON (`benchdiff`, the metrics golden
//! tests) parse it with this hand-rolled recursive-descent reader. It
//! covers the full JSON grammar the emitters in this repository produce:
//! objects, arrays, strings (with escapes), numbers (including the
//! `1.234500e3` scientific form the metrics emitter writes), booleans
//! and `null`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; the bench files stay well within
    /// exact-integer range).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` keeps key iteration deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Looks up a dotted path (`"workload.genome_len"`); array elements
    /// by numeric segment (`"shared_platform.0.threads"`). `None` when
    /// any segment is missing or the shape does not match.
    pub fn get(&self, path: &str) -> Option<&Value> {
        let mut node = self;
        for seg in path.split('.') {
            node = match node {
                Value::Object(map) => map.get(seg)?,
                Value::Array(items) => items.get(seg.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(node)
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Every leaf path in the document (dotted; array indices collapsed
    /// to `[]` so the shape is independent of element counts), sorted
    /// and deduplicated — the schema fingerprint the golden test pins.
    pub fn schema_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        collect_paths(self, String::new(), &mut out);
        out.sort();
        out.dedup();
        out
    }
}

fn collect_paths(value: &Value, prefix: String, out: &mut Vec<String>) {
    match value {
        Value::Object(map) => {
            for (key, child) in map {
                let path = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                collect_paths(child, path, out);
            }
        }
        Value::Array(items) => {
            if items.is_empty() {
                out.push(format!("{prefix}[]"));
            }
            for child in items {
                collect_paths(child, format!("{prefix}[]"), out);
            }
        }
        _ => out.push(prefix),
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What was wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Reads `path` and parses it as one JSON document. Errors (I/O or
/// parse) are rendered as strings that name the offending file — the
/// shape every bench tool reports to stderr.
pub fn parse_file(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs never occur in bench JSON
                            // (ASCII keys and labels); map them to the
                            // replacement character instead of failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(byte) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // copied verbatim; the input is a valid &str).
                    let len = match byte {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    out.push_str(
                        std::str::from_utf8(&self.bytes[self.pos..end])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_parbench_shape() {
        let doc = r#"{
  "workload": { "genome_len": 400000, "read_count": 64, "quick": false },
  "index_build_ms": 1234.567,
  "shared_platform": [
    { "threads": 1, "reads_per_s": 590.1 },
    { "threads": 8, "reads_per_s": 4336.7 }
  ],
  "speedup_8_threads_vs_seed_style": 108.543
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("workload.genome_len").unwrap().as_u64(),
            Some(400_000)
        );
        assert_eq!(v.get("workload.quick").unwrap().as_bool(), Some(false));
        assert_eq!(
            v.get("shared_platform.1.reads_per_s").unwrap().as_f64(),
            Some(4336.7)
        );
        assert_eq!(
            v.get("speedup_8_threads_vs_seed_style").unwrap().as_f64(),
            Some(108.543)
        );
        assert_eq!(v.get("missing.path"), None);
    }

    #[test]
    fn parses_scientific_notation_and_negatives() {
        let v = parse(r#"{ "a": 1.234500e3, "b": -2.5e-1, "c": 0.0 }"#).unwrap();
        assert!((v.get("a").unwrap().as_f64().unwrap() - 1234.5).abs() < 1e-9);
        assert!((v.get("b").unwrap().as_f64().unwrap() + 0.25).abs() < 1e-12);
        assert_eq!(v.get("c").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("c").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn parses_strings_with_escapes() {
        let v = parse(r#"{ "s": "a\"b\\c\nd", "u": "A" }"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("u").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{} garbage").is_err());
        assert!(parse(r#"{ "a": }"#).is_err());
        assert!(parse(r#"[1, 2"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn schema_paths_fingerprint_the_shape() {
        let v = parse(r#"{ "a": 1, "b": { "c": [ { "d": 2 }, { "d": 3 } ] }, "e": [] }"#).unwrap();
        assert_eq!(v.schema_paths(), vec!["a", "b.c[].d", "e[]"]);
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
        assert_eq!(parse("[ ]").unwrap(), Value::Array(Vec::new()));
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
    }
}
