//! Plain-text table rendering for the `experiments` binary.

/// Renders a two-column `(label, value)` series as an aligned table with
/// a title line.
pub fn render_series(title: &str, series: &[(String, f64)]) -> String {
    let width = series
        .iter()
        .map(|(name, _)| name.len())
        .max()
        .unwrap_or(4)
        .max(8);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&"-".repeat(title.len()));
    out.push('\n');
    for (name, value) in series {
        out.push_str(&format!("{name:<width$}  {}\n", format_value(*value)));
    }
    out
}

/// Formats a value compactly: scientific for large magnitudes, fixed for
/// small ones.
pub fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Renders a multi-column table: header row plus rows of cells.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&"-".repeat(title.len()));
    out.push('\n');
    for (i, h) in header.iter().enumerate() {
        out.push_str(&format!("{h:<w$}  ", w = widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            out.push_str(&format!("{cell:<w$}  ", w = widths[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_renders_aligned() {
        let s = vec![("Darwin".to_owned(), 100.0), ("GPU".to_owned(), 1.8e5)];
        let text = render_series("Fig. 8a", &s);
        assert!(text.contains("Darwin"));
        assert!(text.contains("1.800e5"));
    }

    #[test]
    fn value_formatting_ranges() {
        assert_eq!(format_value(0.0), "0");
        assert_eq!(format_value(3.2), "3.200");
        assert_eq!(format_value(123.4), "123.4");
        assert!(format_value(1.0e7).contains('e'));
        assert!(format_value(1.0e-5).contains('e'));
    }

    #[test]
    fn table_renders_header_and_rows() {
        let text = render_table("t", &["a", "bbbb"], &[vec!["1".into(), "2".into()]]);
        assert!(text.contains("bbbb"));
        assert!(text.lines().count() >= 4);
    }
}
