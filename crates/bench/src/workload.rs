//! The evaluation workload, scaled from the paper's setup.
//!
//! Paper §VI: 10 M × 100 bp reads simulated with ART against Hg19
//! (3.2 Gbp), 0.1 % population variation, 0.2 % sequencing error. The
//! simulated platform's throughput/power are *intensive* quantities
//! (per-LFM rates), so a scaled-down batch over a synthetic genome
//! produces the same figure values; `Workload::paper_scaled` picks the
//! scale.

use bioseq::DnaSeq;
use readsim::{genome, ReadSimulator, SimProfile};

/// A reference genome plus a simulated read set.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The indexed reference.
    pub reference: DnaSeq,
    /// The reads to align (forward-strand templates; the aligner is
    /// forward-only, matching the backward-search formulation).
    pub reads: Vec<DnaSeq>,
    /// Ground-truth donor positions, parallel to `reads`.
    pub truth: Vec<usize>,
}

impl Workload {
    /// Builds a workload with the paper's read statistics at a chosen
    /// scale.
    ///
    /// # Panics
    ///
    /// Panics if `genome_len < read_len` or `read_count == 0`.
    pub fn paper_scaled(
        genome_len: usize,
        read_count: usize,
        read_len: usize,
        seed: u64,
    ) -> Workload {
        Workload::with_profile(
            genome_len,
            SimProfile::paper_defaults()
                .read_count(read_count)
                .read_len(read_len)
                .forward_only(),
            seed,
        )
    }

    /// Builds an error-free, variant-free workload: every read aligns in
    /// the exact stage. This is the workload behind the comparison-figure
    /// rows — the paper's throughput model prices the O(m) exact search
    /// (see EXPERIMENTS.md, "figure-row workload").
    ///
    /// # Panics
    ///
    /// Panics if `genome_len < read_len` or `read_count == 0`.
    pub fn clean(genome_len: usize, read_count: usize, read_len: usize, seed: u64) -> Workload {
        Workload::with_profile(
            genome_len,
            SimProfile::paper_defaults()
                .read_count(read_count)
                .read_len(read_len)
                .error_rate(0.0)
                .variants(readsim::variant::VariantProfile {
                    rate: 0.0,
                    ..Default::default()
                })
                .forward_only(),
            seed,
        )
    }

    fn with_profile(genome_len: usize, profile: SimProfile, seed: u64) -> Workload {
        assert!(profile.count > 0, "at least one read required");
        let reference = genome::uniform(genome_len, seed);
        let sim = ReadSimulator::new(profile, seed ^ 0xbead).simulate(&reference);
        let (reads, truth) = sim.reads.into_iter().map(|r| (r.seq, r.donor_pos)).unzip();
        Workload {
            reference,
            reads,
            truth,
        }
    }
}

/// The default experiment workload: 200 kbp genome, 300 × 100 bp reads —
/// large enough to exercise multiple sub-arrays and both alignment
/// stages, small enough for CI.
pub fn paper_workload(seed: u64) -> Workload {
    Workload::paper_scaled(200_000, 300, 100, seed)
}

/// The figure-row workload: same scale, exact-stage reads only.
pub fn figure_workload(seed: u64) -> Workload {
    Workload::clean(200_000, 300, 100, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape() {
        let w = Workload::paper_scaled(50_000, 40, 100, 1);
        assert_eq!(w.reference.len(), 50_000);
        assert_eq!(w.reads.len(), 40);
        assert_eq!(w.truth.len(), 40);
        assert!(w.reads.iter().all(|r| r.len() == 100));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Workload::paper_scaled(10_000, 10, 50, 2);
        let b = Workload::paper_scaled(10_000, 10, 50, 2);
        assert_eq!(a.reads, b.reads);
    }
}
