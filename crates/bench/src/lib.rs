//! Shared harness for the benchmark suite and the `experiments` binary.
//!
//! Everything the per-figure benches need lives here so that the
//! `experiments` binary (which regenerates the *data* of every table and
//! figure) and the Criterion benches (which measure the *code* behind
//! them) stay consistent.

pub mod json;
pub mod rows;
pub mod table;
pub mod workload;

pub use rows::{pim_platform_rows, simulate_config, PimRows};
pub use workload::{figure_workload, paper_workload, Workload};
