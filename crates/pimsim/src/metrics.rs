//! Observability primitives: per-primitive counters and span tracing.
//!
//! The paper's evaluation (Figs. 8–10) is about *where cycles go* — how
//! much of an `LFM` is `XNOR_Match` versus marker `MEM` versus `IM_ADD`
//! carry propagation, how busy each sub-array is, how well the `Pd`
//! pipeline overlaps. The [`CycleLedger`](crate::CycleLedger) answers
//! those questions only at resource granularity; this module adds:
//!
//! * [`PrimCounters`] — hierarchical counts and busy cycles per *logical
//!   primitive* ([`LogicalOp`]), recorded automatically by every
//!   [`LogicalOp::charge`] and merged with the ledger, so parallel
//!   workers stay accurate through the existing
//!   `BatchTotals` path;
//! * [`SpanTracer`] / [`Span`] — a lightweight ring-buffered span
//!   tracer. Spans are timestamped in *simulated busy cycles* (the only
//!   clock the platform has), the buffer is bounded, and a disabled
//!   tracer costs one branch per call site.

use crate::costs::LogicalOp;
use crate::ledger::CycleLedger;

/// Per-primitive counters: how many of each [`LogicalOp`] were issued
/// and how many busy cycles they occupied.
///
/// Every [`LogicalOp::charge`] records itself here via the ledger, so
/// for any ledger whose charges all flowed through logical operations
/// (the entire production path), `total_cycles()` reconciles exactly
/// with [`CycleLedger::total_busy_cycles`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrimCounters {
    counts: [u64; LogicalOp::ALL.len()],
    cycles: [u64; LogicalOp::ALL.len()],
}

impl PrimCounters {
    /// Empty counters.
    pub fn new() -> PrimCounters {
        PrimCounters::default()
    }

    /// Records one issued `op` (count +1, cycles +`op.cycles()`).
    #[inline]
    pub fn note(&mut self, op: LogicalOp) {
        self.note_many(op, 1);
    }

    /// Records `n` issued `op`s in one step. Exactly equivalent to `n`
    /// [`PrimCounters::note`] calls — both fields are integers, so the
    /// batched update reconciles bit-for-bit.
    #[inline]
    pub fn note_many(&mut self, op: LogicalOp, n: u64) {
        let i = op.index();
        self.counts[i] += n;
        self.cycles[i] += n * op.cycles();
    }

    /// Number of `op` primitives issued.
    pub fn count(&self, op: LogicalOp) -> u64 {
        self.counts[op.index()]
    }

    /// Busy cycles attributed to `op`.
    pub fn cycles(&self, op: LogicalOp) -> u64 {
        self.cycles[op.index()]
    }

    /// Total busy cycles over all primitives. Reconciles with
    /// [`CycleLedger::total_busy_cycles`] when every charge flowed
    /// through a [`LogicalOp`].
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Total primitives issued.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sub-array activations: every primitive that drives word lines in
    /// a sub-array (everything except the DPU-internal popcount and
    /// index-register updates).
    pub fn subarray_activations(&self) -> u64 {
        LogicalOp::ALL
            .iter()
            .filter(|op| op.activates_subarray())
            .map(|&op| self.count(op))
            .sum()
    }

    /// Carry-propagation/write-back cycles inside `IM_ADD` (the 13
    /// non-overlapped cycles of each 45-cycle 32-bit add — the part the
    /// Fig. 7 pipeline cannot hide).
    pub fn im_add_carry_cycles(&self) -> u64 {
        self.count(LogicalOp::ImAdd32) * IM_ADD_CARRY_CYCLES
    }

    /// Adds `other`'s counts into `self` (ledger/worker merge).
    pub fn merge(&mut self, other: &PrimCounters) {
        for i in 0..LogicalOp::ALL.len() {
            self.counts[i] += other.counts[i];
            self.cycles[i] += other.cycles[i];
        }
    }
}

/// Carry/write-back cycles per 32-bit `IM_ADD` (see the cost table:
/// 32 compute + 13 write-stall cycles).
pub const IM_ADD_CARRY_CYCLES: u64 = 13;

/// One traced interval, timestamped in simulated busy cycles of the
/// session ledger it was recorded against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Static label (`"lfm"`, `"exact_pass"`, `"recovery.retry"`, …).
    pub name: &'static str,
    /// Ledger busy cycles when the span opened.
    pub start_cycles: u64,
    /// Ledger busy cycles when the span closed.
    pub end_cycles: u64,
}

impl Span {
    /// Busy cycles covered by the span.
    pub fn cycles(&self) -> u64 {
        self.end_cycles.saturating_sub(self.start_cycles)
    }
}

/// A bounded, ring-buffered span recorder.
///
/// Disabled (capacity 0) by default: a disabled tracer's
/// [`start`](SpanTracer::start)/[`record`](SpanTracer::record) are one
/// predictable branch each, so tracing can stay compiled into the hot
/// `LFM` loop at zero practical cost. When enabled, the newest
/// `capacity` spans are kept and older ones are overwritten (the
/// [`dropped`](SpanTracer::dropped) counter says how many).
///
/// # Examples
///
/// ```
/// use pimsim::{CycleLedger, SpanTracer};
///
/// let ledger = CycleLedger::new();
/// let mut tracer = SpanTracer::with_capacity(8);
/// let t0 = tracer.start(&ledger);
/// // ... charge work to the ledger ...
/// tracer.record("exact_pass", t0, &ledger);
/// assert_eq!(tracer.spans().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTracer {
    capacity: usize,
    ring: Vec<Span>,
    /// Next overwrite position once the ring is full.
    head: usize,
    recorded: u64,
}

impl SpanTracer {
    /// A disabled tracer (the default): every call site is a no-op.
    pub fn disabled() -> SpanTracer {
        SpanTracer::default()
    }

    /// An enabled tracer keeping the newest `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (use [`SpanTracer::disabled`]).
    pub fn with_capacity(capacity: usize) -> SpanTracer {
        assert!(capacity > 0, "use SpanTracer::disabled() for capacity 0");
        SpanTracer {
            capacity,
            ring: Vec::with_capacity(capacity),
            head: 0,
            recorded: 0,
        }
    }

    /// Whether spans are being kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Opens a span: returns the current ledger timestamp (0 when
    /// disabled — the value is only ever consumed by
    /// [`record`](SpanTracer::record), which is then also a no-op).
    #[inline]
    pub fn start(&self, ledger: &CycleLedger) -> u64 {
        if self.capacity == 0 {
            0
        } else {
            ledger.total_busy_cycles()
        }
    }

    /// Closes a span opened at `start` and stores it, overwriting the
    /// oldest span when the ring is full. No-op when disabled.
    #[inline]
    pub fn record(&mut self, name: &'static str, start: u64, ledger: &CycleLedger) {
        if self.capacity == 0 {
            return;
        }
        let span = Span {
            name,
            start_cycles: start,
            end_cycles: ledger.total_busy_cycles(),
        };
        if self.ring.len() < self.capacity {
            self.ring.push(span);
        } else {
            self.ring[self.head] = span;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    /// Retained spans, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }

    /// Total spans recorded since creation (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Spans lost to ring overwrite.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.ring.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mram::array::ArrayModel;

    #[test]
    fn prim_counters_track_counts_and_cycles() {
        let model = ArrayModel::default();
        let mut ledger = CycleLedger::new();
        LogicalOp::XnorMatch.charge(&model, &mut ledger);
        LogicalOp::ImAdd32.charge(&model, &mut ledger);
        LogicalOp::MarkerRead.charge(&model, &mut ledger);
        let prims = ledger.primitives();
        assert_eq!(prims.count(LogicalOp::XnorMatch), 1);
        assert_eq!(prims.cycles(LogicalOp::XnorMatch), 2);
        assert_eq!(prims.cycles(LogicalOp::ImAdd32), 45);
        assert_eq!(prims.total_count(), 3);
        // Per-primitive cycles reconcile with the resource aggregate.
        assert_eq!(prims.total_cycles(), ledger.total_busy_cycles());
    }

    #[test]
    fn activations_exclude_dpu_internal_ops() {
        let model = ArrayModel::default();
        let mut ledger = CycleLedger::new();
        LogicalOp::XnorMatch.charge(&model, &mut ledger); // activates
        LogicalOp::Popcount.charge(&model, &mut ledger); // DPU-internal
        LogicalOp::IndexUpdate.charge(&model, &mut ledger); // DPU-internal
        LogicalOp::RowWrite.charge(&model, &mut ledger); // activates
        assert_eq!(ledger.primitives().subarray_activations(), 2);
    }

    #[test]
    fn carry_cycles_scale_with_adds() {
        let model = ArrayModel::default();
        let mut ledger = CycleLedger::new();
        for _ in 0..5 {
            LogicalOp::ImAdd32.charge(&model, &mut ledger);
        }
        assert_eq!(ledger.primitives().im_add_carry_cycles(), 5 * 13);
    }

    #[test]
    fn merge_is_componentwise_sum() {
        let model = ArrayModel::default();
        let mut a = CycleLedger::new();
        let mut b = CycleLedger::new();
        LogicalOp::XnorMatch.charge(&model, &mut a);
        LogicalOp::XnorMatch.charge(&model, &mut b);
        LogicalOp::RowRead.charge(&model, &mut b);
        a.merge(&b);
        let prims = a.primitives();
        assert_eq!(prims.count(LogicalOp::XnorMatch), 2);
        assert_eq!(prims.count(LogicalOp::RowRead), 1);
        assert_eq!(prims.total_cycles(), a.total_busy_cycles());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let ledger = CycleLedger::new();
        let mut tracer = SpanTracer::disabled();
        let t0 = tracer.start(&ledger);
        tracer.record("x", t0, &ledger);
        assert!(!tracer.is_enabled());
        assert!(tracer.spans().is_empty());
        assert_eq!(tracer.recorded(), 0);
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let model = ArrayModel::default();
        let mut ledger = CycleLedger::new();
        let mut tracer = SpanTracer::with_capacity(2);
        for name in ["a", "b", "c"] {
            let t0 = tracer.start(&ledger);
            LogicalOp::RowRead.charge(&model, &mut ledger);
            tracer.record(name, t0, &ledger);
        }
        let spans = tracer.spans();
        assert_eq!(
            spans.iter().map(|s| s.name).collect::<Vec<_>>(),
            vec!["b", "c"]
        );
        assert_eq!(tracer.recorded(), 3);
        assert_eq!(tracer.dropped(), 1);
        // Oldest-first ordering by timestamp.
        assert!(spans[0].start_cycles < spans[1].start_cycles);
        assert_eq!(spans[1].cycles(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity 0")]
    fn zero_capacity_rejected() {
        let _ = SpanTracer::with_capacity(0);
    }
}
