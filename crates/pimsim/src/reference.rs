//! The pre-packing boolean-matrix `XNOR_Match` kernel, kept as a
//! reference implementation.
//!
//! Before the bit-plane packing (DESIGN.md §11) the sub-array stored its
//! rows as `Vec<Vec<bool>>` and `XNOR_Match` allocated a fresh 128-entry
//! `Vec<bool>` per call, comparing the two interleaved bit lanes of every
//! base position one boolean at a time. That representation is preserved
//! here, bit-for-bit, for two jobs:
//!
//! * the property tests prove the packed kernel agrees with this one over
//!   random rows, lengths, sentinel positions, stuck cells, and fault
//!   seeds — the packed rewrite is an *optimisation*, not a behaviour
//!   change;
//! * the `kernelbench` bin measures the packed kernel's speedup against
//!   it, which is the number the ISSUE's ≥5× acceptance gate checks.
//!
//! Both kernels charge the same [`LogicalOp`]s: the cycle model prices
//! logical operations, not host-side data structures.

use bioseq::Base;
use mram::array::ArrayModel;

use crate::costs::LogicalOp;
use crate::ledger::CycleLedger;
use crate::subarray::SubArrayLayout;

/// The boolean-matrix sub-array as it existed before bit-plane packing:
/// BWT and `CRef` zones only (markers and `IM_ADD` never changed
/// representation on the hot path).
///
/// # Examples
///
/// ```
/// use pimsim::reference::BoolSubArray;
/// use pimsim::CycleLedger;
///
/// let mut sa = BoolSubArray::new(mram::array::ArrayModel::default());
/// let mut ledger = CycleLedger::new();
/// sa.load_cref_rows(&mut ledger);
/// sa.load_bwt_row(0, &[0b00, 0b10], &mut ledger);
/// let matches = sa.xnor_match(0, bioseq::Base::A, &mut ledger);
/// assert_eq!(&matches[..2], &[false, true]);
/// ```
#[derive(Debug, Clone)]
pub struct BoolSubArray {
    model: ArrayModel,
    /// Interleaved per-row booleans: base `j`'s low bit at column `2j`,
    /// high bit at column `2j + 1`.
    bwt: Vec<Vec<bool>>,
    cref: Vec<Vec<bool>>,
    bwt_row_len: Vec<usize>,
}

impl BoolSubArray {
    /// An empty boolean sub-array with the paper layout's BWT capacity.
    pub fn new(model: ArrayModel) -> BoolSubArray {
        let layout = SubArrayLayout::paper();
        let cols = model.geometry().cols;
        BoolSubArray {
            model,
            bwt: vec![vec![false; cols]; layout.buckets()],
            cref: vec![vec![false; cols]; 4],
            bwt_row_len: vec![0; layout.buckets()],
        }
    }

    /// Loads up to 128 2-bit base codes into bucket row `bucket`,
    /// touching only the first `2 × codes.len()` columns (the partial-
    /// write semantics the packed kernel must reproduce).
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is out of range or more than 128 codes are
    /// given.
    pub fn load_bwt_row(&mut self, bucket: usize, codes: &[u8], ledger: &mut CycleLedger) {
        assert!(bucket < self.bwt.len(), "bucket {bucket} out of range");
        assert!(
            codes.len() <= SubArrayLayout::BASES_PER_ROW,
            "at most 128 bases per row"
        );
        let row = &mut self.bwt[bucket];
        for (j, &code) in codes.iter().enumerate() {
            row[2 * j] = code & 0b01 != 0;
            row[2 * j + 1] = code & 0b10 != 0;
        }
        self.bwt_row_len[bucket] = codes.len();
        LogicalOp::RowWrite.charge(&self.model, ledger);
    }

    /// Initialises the four `CRef` rows (each base's 2-bit code repeated
    /// across the word line).
    pub fn load_cref_rows(&mut self, ledger: &mut CycleLedger) {
        for base in Base::ALL {
            let code = base.code();
            let row = &mut self.cref[base.rank()];
            for j in 0..SubArrayLayout::BASES_PER_ROW {
                row[2 * j] = code & 0b01 != 0;
                row[2 * j + 1] = code & 0b10 != 0;
            }
            LogicalOp::RowWrite.charge(&self.model, ledger);
        }
    }

    /// Raw bit at `(bucket, col)` of the BWT zone (interleaved column
    /// addressing, matching [`SubArray::bit`](crate::SubArray::bit) on
    /// the BWT rows).
    pub fn bwt_bit(&self, bucket: usize, col: usize) -> bool {
        self.bwt[bucket][col]
    }

    /// Forces a BWT-zone cell — the stuck-at hook, mirroring
    /// [`SubArray::force_bit`](crate::SubArray::force_bit) for the rows
    /// this reference models.
    pub fn force_bwt_bit(&mut self, bucket: usize, col: usize, value: bool) {
        self.bwt[bucket][col] = value;
    }

    /// The original per-boolean `XNOR_Match`: allocates and returns a
    /// fresh 128-entry match vector, comparing both interleaved bit
    /// lanes of every position. Positions past the loaded length are
    /// `false`. Charges the same [`LogicalOp::XnorMatch`] as the packed
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is out of range.
    pub fn xnor_match(&self, bucket: usize, base: Base, ledger: &mut CycleLedger) -> Vec<bool> {
        assert!(bucket < self.bwt.len(), "bucket {bucket} out of range");
        let row = &self.bwt[bucket];
        let cref = &self.cref[base.rank()];
        let len = self.bwt_row_len[bucket];
        LogicalOp::XnorMatch.charge(&self.model, ledger);
        (0..SubArrayLayout::BASES_PER_ROW)
            .map(|j| j < len && row[2 * j] == cref[2 * j] && row[2 * j + 1] == cref[2 * j + 1])
            .collect()
    }
}

/// One reference-kernel `LFM` compare stage exactly as the pre-packing
/// hot path executed it: `XNOR_Match` (fresh `Vec<bool>`), sentinel
/// masking by assignment, optional seeded faults through the boolean
/// APIs, then a per-bool prefix scan. Returns `count_match`.
///
/// The packed equivalent is
/// [`packed_compare_stage`]; `kernelbench` times the two against each
/// other and the property tests pin their outputs equal.
pub fn reference_compare_stage(
    sa: &BoolSubArray,
    bucket: usize,
    base: Base,
    sentinel: Option<usize>,
    within: usize,
    injector: Option<&mut crate::FaultInjector>,
    ledger: &mut CycleLedger,
) -> u32 {
    let mut matches = sa.xnor_match(bucket, base, ledger);
    if let Some(pos) = sentinel {
        matches[pos] = false;
    }
    LogicalOp::Popcount.charge(&sa.model, ledger);
    if let Some(injector) = injector {
        injector.transient_row_fault(&mut matches);
        injector.corrupt_match_bits(&mut matches[..within]);
    }
    matches[..within].iter().filter(|&&m| m).count() as u32
}

/// The packed-kernel compare stage with identical logical structure and
/// ledger charges: word-parallel `XNOR_Match` into a stack
/// [`MatchMask`](crate::MatchMask), sentinel clear, optional mask-based
/// faults, masked-popcount prefix. Returns `count_match`.
pub fn packed_compare_stage(
    sa: &crate::SubArray,
    bucket: usize,
    base: Base,
    sentinel: Option<usize>,
    within: usize,
    injector: Option<&mut crate::FaultInjector>,
    ledger: &mut CycleLedger,
) -> u32 {
    packed_compare_stage_with(
        sa,
        bucket,
        base,
        sentinel,
        within,
        crate::simd::SimdPolicy::Scalar,
        injector,
        ledger,
    )
}

/// [`packed_compare_stage`] with an explicit host kernel policy: the
/// same logical structure and ledger charges, with the plane combine
/// and the prefix popcount dispatched through `simd::plane_match` /
/// `simd::masked_count`. `kernelbench` times the scalar and auto
/// policies against each other; the lane choice never moves a charge.
#[allow(clippy::too_many_arguments)]
pub fn packed_compare_stage_with(
    sa: &crate::SubArray,
    bucket: usize,
    base: Base,
    sentinel: Option<usize>,
    within: usize,
    policy: crate::simd::SimdPolicy,
    injector: Option<&mut crate::FaultInjector>,
    ledger: &mut CycleLedger,
) -> u32 {
    let mut matches = sa.xnor_match_with(bucket, base, policy, ledger);
    if let Some(pos) = sentinel {
        matches.set(pos, false);
    }
    LogicalOp::Popcount.charge(sa.model(), ledger);
    if let Some(injector) = injector {
        injector.transient_row_mask(&mut matches);
        injector.corrupt_match_mask(&mut matches, within);
    }
    matches.count_prefix_with(within, policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_match_vector_is_the_scalar_oracle() {
        let mut sa = BoolSubArray::new(ArrayModel::default());
        let mut ledger = CycleLedger::new();
        sa.load_cref_rows(&mut ledger);
        let codes: Vec<u8> = (0..100).map(|i| ((i * 13 + 1) % 4) as u8).collect();
        sa.load_bwt_row(0, &codes, &mut ledger);
        for base in Base::ALL {
            let m = sa.xnor_match(0, base, &mut ledger);
            assert_eq!(m.len(), 128);
            for (j, &hit) in m.iter().enumerate() {
                let expected = j < codes.len() && codes[j] == base.code();
                assert_eq!(hit, expected, "position {j} base {base}");
            }
        }
    }

    #[test]
    fn compare_stage_counts_the_prefix() {
        let mut sa = BoolSubArray::new(ArrayModel::default());
        let mut ledger = CycleLedger::new();
        sa.load_cref_rows(&mut ledger);
        sa.load_bwt_row(0, &[0b10; 10], &mut ledger);
        let count = reference_compare_stage(&sa, 0, Base::A, Some(3), 10, None, &mut ledger);
        assert_eq!(count, 9, "all ten match, sentinel at 3 masked out");
    }
}
