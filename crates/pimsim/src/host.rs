//! Host-side runtime telemetry: wall-clock histograms, spans and worker
//! statistics.
//!
//! Everything else in this crate is timestamped in *simulated* cycles of
//! the modelled chip. This module is the deliberate exception: it
//! measures the *host* — how long the simulation itself takes, per read
//! and per chunk, on which worker thread — for the production questions
//! the cycle model cannot answer ("what is the p99 per-read latency on
//! this machine", "which workers are starved"). The two clocks must
//! never be mixed: host numbers are nondeterministic wall-clock
//! nanoseconds and live in their own `host` section of the metrics JSON,
//! while the simulated breakdown stays bit-reproducible (DESIGN.md §12).
//!
//! Components:
//!
//! * [`HostHistogram`] — a mergeable log2-bucketed latency histogram
//!   (merge-associative, so per-worker histograms combine like
//!   `BatchTotals`), with quantile upper bounds accurate to one bucket;
//! * [`HostEpoch`] / [`HostSpan`] / [`HostSpanLog`] — a per-run monotonic
//!   epoch and a bounded per-thread span recorder;
//! * [`WorkerStats`] — utilisation and work-stealing counters threaded
//!   out of the parallel engine;
//! * [`chrome_trace_json`] — the Chrome trace-event exporter behind
//!   `pimalign --trace-out` (one track per worker, viewable in
//!   `chrome://tracing` or Perfetto).

use std::time::Instant;

/// Histogram buckets: bucket 0 holds the value 0, bucket `i ≥ 1` holds
/// values whose highest set bit is `i - 1`, i.e. `[2^(i-1), 2^i - 1]`.
/// 64 value buckets + the zero bucket cover the full `u64` range.
const HIST_BUCKETS: usize = 65;

/// A mergeable log2-bucketed latency histogram over `u64` nanosecond
/// samples.
///
/// Recording is O(1) (a leading-zeros count); merging is element-wise
/// addition and therefore associative and commutative — merging 8
/// per-worker histograms in any grouping equals recording every sample
/// into one histogram. Quantiles return the *upper bound* of the bucket
/// holding the requested rank, so they match a sorted-vector oracle
/// within one log2 bucket by construction.
///
/// # Examples
///
/// ```
/// use pimsim::HostHistogram;
///
/// let mut h = HostHistogram::new();
/// for ns in [100, 200, 400, 800] {
///     h.record_ns(ns);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile_upper_ns(0.5) >= 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl HostHistogram {
    /// An empty histogram.
    pub fn new() -> HostHistogram {
        HostHistogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    fn bucket_index(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            64 - ns.leading_zeros() as usize
        }
    }

    /// The largest value bucket `index` can hold (`0` for the zero
    /// bucket, `2^i - 1` otherwise).
    pub fn bucket_upper_ns(index: usize) -> u64 {
        assert!(index < HIST_BUCKETS, "bucket {index} out of range");
        if index == 0 {
            0
        } else {
            u64::MAX >> (64 - index)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Adds `other`'s samples into `self` (element-wise, associative).
    pub fn merge(&mut self, other: &HostHistogram) {
        for i in 0..HIST_BUCKETS {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating), ns.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest sample seen, ns (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean sample, ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`q` clamped to `[0, 1]`; 0 when empty). The true sample shares
    /// the returned bucket, so the bound is within one log2 bucket of a
    /// sorted-vector oracle.
    pub fn quantile_upper_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the quantile sample in sorted order.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The histogram knows the exact maximum; never report a
                // bucket edge past it.
                return Self::bucket_upper_ns(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Non-empty buckets as `(bucket_upper_ns, count)` rows, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_upper_ns(i), n))
            .collect()
    }
}

impl Default for HostHistogram {
    fn default() -> Self {
        HostHistogram::new()
    }
}

/// The per-run monotonic time origin every host span is measured from.
///
/// One epoch is created per run (before the index build, so the build
/// shows up at `t ≈ 0` in the trace) and copied into every worker's
/// [`HostSpanLog`]; all spans therefore share one timeline.
#[derive(Debug, Clone, Copy)]
pub struct HostEpoch(Instant);

impl HostEpoch {
    /// An epoch anchored at "now".
    pub fn new() -> HostEpoch {
        HostEpoch(Instant::now())
    }

    /// Monotonic nanoseconds elapsed since the epoch.
    pub fn now_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

impl Default for HostEpoch {
    fn default() -> Self {
        HostEpoch::new()
    }
}

/// One wall-clock span on one worker's track.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostSpan {
    /// Static label (`"index_build"`, `"chunk"`, `"exact_pass"`, …).
    pub name: &'static str,
    /// Track (worker) id the span belongs to.
    pub tid: u32,
    /// Nanoseconds since the run epoch when the span opened.
    pub start_ns: u64,
    /// Span duration, ns.
    pub dur_ns: u64,
}

/// A bounded wall-clock span recorder for one thread.
///
/// Unlike the simulated-cycle [`SpanTracer`](crate::SpanTracer) ring
/// (which keeps the *newest* spans), the host log keeps the *earliest*
/// spans — a truncated trace still shows the run from its start — and
/// counts everything it refused in [`dropped`](HostSpanLog::dropped).
#[derive(Debug, Clone)]
pub struct HostSpanLog {
    epoch: HostEpoch,
    tid: u32,
    capacity: usize,
    spans: Vec<HostSpan>,
    dropped: u64,
}

impl HostSpanLog {
    /// A recorder for track `tid`, keeping at most `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(epoch: HostEpoch, tid: u32, capacity: usize) -> HostSpanLog {
        assert!(capacity > 0, "span log capacity must be positive");
        HostSpanLog {
            epoch,
            tid,
            capacity,
            spans: Vec::new(),
            dropped: 0,
        }
    }

    /// Opens a span: the current timestamp, ns since the epoch.
    #[inline]
    pub fn start(&self) -> u64 {
        self.epoch.now_ns()
    }

    /// Closes a span opened at `start_ns` and stores it; over capacity
    /// the span is counted as dropped instead.
    #[inline]
    pub fn record(&mut self, name: &'static str, start_ns: u64) {
        if self.spans.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        let now = self.epoch.now_ns();
        self.spans.push(HostSpan {
            name,
            tid: self.tid,
            start_ns,
            dur_ns: now.saturating_sub(start_ns),
        });
    }

    /// The shared run epoch.
    pub fn epoch(&self) -> HostEpoch {
        self.epoch
    }

    /// The track id spans are recorded under.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Retained spans, in recording order.
    pub fn spans(&self) -> &[HostSpan] {
        &self.spans
    }

    /// Spans refused because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the log, returning `(spans, dropped)`.
    pub fn into_parts(self) -> (Vec<HostSpan>, u64) {
        (self.spans, self.dropped)
    }
}

/// Utilisation and work-stealing counters for one parallel worker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index (also its trace track id).
    pub worker: u32,
    /// Chunks claimed off the shared cursor.
    pub chunks_claimed: u64,
    /// Chunks claimed beyond the worker's fair share — work stolen from
    /// slower workers under the dynamic-chunking policy.
    pub steals: u64,
    /// Reads this worker aligned.
    pub reads: u64,
    /// Wall-clock ns spent inside chunk alignment (busy time).
    pub busy_ns: u64,
}

impl WorkerStats {
    /// Adds `other`'s counters into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the worker ids differ — stats merge per worker across
    /// chunks, never across workers.
    pub fn merge(&mut self, other: &WorkerStats) {
        assert_eq!(self.worker, other.worker, "stats merge is per worker");
        self.chunks_claimed += other.chunks_claimed;
        self.steals += other.steals;
        self.reads += other.reads;
        self.busy_ns += other.busy_ns;
    }

    /// Fraction of `wall_ns` this worker spent busy (clamped to 1; 0
    /// when the wall time is 0).
    pub fn busy_fraction(&self, wall_ns: u64) -> f64 {
        if wall_ns == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / wall_ns as f64).min(1.0)
        }
    }
}

/// Serialises spans as a Chrome trace-event JSON document (the
/// `chrome://tracing` / Perfetto format): one metadata `thread_name`
/// event per track plus one complete (`"X"`) event per span, timestamps
/// in fractional microseconds since the run epoch.
///
/// `tracks` names every track that should exist even when it recorded no
/// spans (an idle worker still gets its labelled track). Spans are
/// sorted by `(tid, start_ns)` so the document depends only on what was
/// recorded, not on merge order.
pub fn chrome_trace_json(spans: &[HostSpan], tracks: &[(u32, String)]) -> String {
    let mut events = Vec::with_capacity(tracks.len() + spans.len());
    for (tid, name) in tracks {
        events.push(format!(
            "    {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }
    let mut ordered: Vec<&HostSpan> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.tid, s.start_ns, s.dur_ns));
    for s in ordered {
        events.push(format!(
            "    {{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\
             \"dur\":{:.3}}}",
            s.name,
            s.tid,
            s.start_ns as f64 / 1e3,
            s.dur_ns as f64 / 1e3,
        ));
    }
    format!(
        "{{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n{}\n  ]\n}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = HostHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.quantile_upper_ns(0.5), 0);
        assert_eq!(h.quantile_upper_ns(0.99), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn bucket_edges_cover_u64() {
        assert_eq!(HostHistogram::bucket_upper_ns(0), 0);
        assert_eq!(HostHistogram::bucket_upper_ns(1), 1);
        assert_eq!(HostHistogram::bucket_upper_ns(2), 3);
        assert_eq!(HostHistogram::bucket_upper_ns(10), 1023);
        assert_eq!(HostHistogram::bucket_upper_ns(64), u64::MAX);
        let mut h = HostHistogram::new();
        h.record_ns(u64::MAX);
        h.record_ns(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), u64::MAX);
    }

    #[test]
    fn quantile_bound_brackets_the_sorted_oracle() {
        // Deterministic pseudo-random samples (no RNG dependency).
        let mut h = HostHistogram::new();
        let mut samples: Vec<u64> = (0..1_000u64)
            .map(|i| (i.wrapping_mul(2_654_435_761) % 1_000_000) + 1)
            .collect();
        for &s in &samples {
            h.record_ns(s);
        }
        samples.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let oracle = samples[rank - 1];
            let bound = h.quantile_upper_ns(q);
            assert!(bound >= oracle, "q={q}: bound {bound} < oracle {oracle}");
            // Same log2 bucket: the bound is less than twice the oracle's
            // bucket lower edge, i.e. strictly within one bucket.
            assert!(
                bound < oracle.saturating_mul(2).max(1),
                "q={q}: bound {bound} beyond one bucket of {oracle}"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_matches_single_recorder() {
        let samples: Vec<u64> = (0..512u64).map(|i| i.wrapping_mul(97) % 10_000).collect();
        let mut whole = HostHistogram::new();
        for &s in &samples {
            whole.record_ns(s);
        }
        // 8 shards merged pairwise in an arbitrary tree order.
        let mut shards: Vec<HostHistogram> = (0..8)
            .map(|w| {
                let mut h = HostHistogram::new();
                for &s in samples.iter().skip(w).step_by(8) {
                    h.record_ns(s);
                }
                h
            })
            .collect();
        while shards.len() > 1 {
            let other = shards.pop().unwrap();
            let mid = shards.len() / 2;
            shards[mid].merge(&other);
        }
        assert_eq!(shards[0], whole);
    }

    #[test]
    fn span_log_keeps_earliest_and_counts_drops() {
        let mut log = HostSpanLog::new(HostEpoch::new(), 3, 2);
        for name in ["a", "b", "c"] {
            let t0 = log.start();
            log.record(name, t0);
        }
        assert_eq!(log.spans().len(), 2);
        assert_eq!(log.spans()[0].name, "a");
        assert_eq!(log.spans()[1].name, "b");
        assert_eq!(log.dropped(), 1);
        assert!(log.spans().iter().all(|s| s.tid == 3));
    }

    #[test]
    fn worker_stats_merge_per_worker() {
        let mut a = WorkerStats {
            worker: 2,
            chunks_claimed: 3,
            steals: 1,
            reads: 40,
            busy_ns: 1_000,
        };
        a.merge(&WorkerStats {
            worker: 2,
            chunks_claimed: 2,
            steals: 0,
            reads: 24,
            busy_ns: 500,
        });
        assert_eq!(a.chunks_claimed, 5);
        assert_eq!(a.reads, 64);
        assert!((a.busy_fraction(3_000) - 0.5).abs() < 1e-12);
        assert_eq!(a.busy_fraction(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "per worker")]
    fn cross_worker_merge_rejected() {
        let mut a = WorkerStats {
            worker: 0,
            ..WorkerStats::default()
        };
        a.merge(&WorkerStats {
            worker: 1,
            ..WorkerStats::default()
        });
    }

    #[test]
    fn chrome_trace_has_tracks_and_spans() {
        let spans = [
            HostSpan {
                name: "chunk",
                tid: 1,
                start_ns: 2_000,
                dur_ns: 500,
            },
            HostSpan {
                name: "index_build",
                tid: 0,
                start_ns: 0,
                dur_ns: 1_500,
            },
        ];
        let json = chrome_trace_json(&spans, &[(0, "worker-0".into()), (1, "worker-1".into())]);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"worker-1\""));
        // Sorted by (tid, start): index_build on tid 0 precedes chunk.
        let build = json.find("index_build").unwrap();
        let chunk = json.find("\"chunk\"").unwrap();
        assert!(build < chunk);
        assert!(json.contains("\"ts\":2.000"));
        assert!(json.contains("\"dur\":1.500"));
    }
}
