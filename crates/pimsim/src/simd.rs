//! SIMD-wide evaluation of the packed bit-plane kernel, plus the
//! rank-checkpoint cache (DESIGN.md §16).
//!
//! Everything in this module is **host wall-clock only**. The simulated
//! platform executes the same logical operations no matter which lane
//! evaluates them, so the cycle ledger, the per-primitive counters and
//! every functional result are byte-identical across
//! [`SimdPolicy::Auto`] and [`SimdPolicy::Scalar`] — only the host time
//! spent producing them changes. The lane is picked once per process via
//! runtime CPU-feature detection (`std::arch`, stable Rust, no new
//! dependencies): AVX2 evaluates all four plane words of a packed row in
//! one 256-bit op, SSE2 two at a time, and the portable fallback is the
//! `[u64; 4]`-at-a-time word loop the scalar kernel always uses.
//!
//! The [`KernelCache`] memoizes `(sub-array, bucket, base) →
//! (post-sentinel match mask, marker word)` — both pure functions of the
//! immutable mapped index — so repeated `LFM` steps over hot buckets of
//! a repeat-dense reference skip the compare recount and the 32-row
//! marker gather on the host. Hits still charge the exact `XNOR_Match` +
//! marker-read cycles a recompute would (the caller's responsibility;
//! see `LfmBatch::run_compare_with`), keeping the simulated platform
//! oblivious to the cache.

use std::str::FromStr;
use std::sync::OnceLock;

/// How the packed kernel evaluates its plane ops, selected by
/// `--kernel-simd` on both CLIs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SimdPolicy {
    /// Dispatch to the widest lane the CPU supports (AVX2 → SSE2 →
    /// portable) and enable the rank-checkpoint cache. The default.
    #[default]
    Auto,
    /// Force the portable word loop and disable the cache — exactly the
    /// pre-SIMD kernel, kept as the honest benchmark baseline and the
    /// escape hatch.
    Scalar,
}

impl SimdPolicy {
    /// Whether this policy runs the rank-checkpoint cache. `Scalar`
    /// means *the whole baseline path*: no SIMD and no memoization.
    #[inline]
    pub fn cache_enabled(self) -> bool {
        matches!(self, SimdPolicy::Auto)
    }

    /// Stable label for logs and metrics (`auto` / `scalar`).
    pub fn name(self) -> &'static str {
        match self {
            SimdPolicy::Auto => "auto",
            SimdPolicy::Scalar => "scalar",
        }
    }
}

impl FromStr for SimdPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<SimdPolicy, String> {
        match s {
            "auto" => Ok(SimdPolicy::Auto),
            "scalar" => Ok(SimdPolicy::Scalar),
            other => Err(format!("expected auto or scalar, got {other:?}")),
        }
    }
}

/// The lane runtime dispatch resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Sse2,
    Portable,
}

/// One-time CPU-feature probe; every call after the first is a load.
fn lane() -> Lane {
    static LANE: OnceLock<Lane> = OnceLock::new();
    *LANE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::is_x86_feature_detected!("avx2") {
                return Lane::Avx2;
            }
            if std::is_x86_feature_detected!("sse2") {
                return Lane::Sse2;
            }
        }
        Lane::Portable
    })
}

/// Whether the hardware `popcnt` instruction is available (the masked
/// prefix count dispatches on it separately from the plane-op lane:
/// `popcnt` predates AVX2 and is absent from the x86-64 baseline Rust
/// targets, so the software fallback is otherwise emitted).
#[cfg(target_arch = "x86_64")]
fn popcnt_available() -> bool {
    static POPCNT: OnceLock<bool> = OnceLock::new();
    *POPCNT.get_or_init(|| std::is_x86_feature_detected!("popcnt"))
}

/// The path `Auto` dispatch resolved to on this host: `"avx2"`,
/// `"sse2"` or `"portable"`; a `Scalar` policy always reports
/// `"scalar"`. Logged once at CLI startup and recorded in
/// `BENCH_kernel.json` so benchmark floors can be gated honestly per
/// host class.
pub fn dispatched_path(policy: SimdPolicy) -> &'static str {
    match policy {
        SimdPolicy::Scalar => "scalar",
        SimdPolicy::Auto => match lane() {
            #[cfg(target_arch = "x86_64")]
            Lane::Avx2 => "avx2",
            #[cfg(target_arch = "x86_64")]
            Lane::Sse2 => "sse2",
            Lane::Portable => "portable",
        },
    }
}

/// Combines the two bit-planes of one packed `XNOR_Match`: word `w` of
/// the result has bit `j` set when both plane lanes of base `j` match
/// and position `j` is inside the loaded length. Pure bit math — every
/// lane returns identical words for identical inputs, pinned by test.
#[inline]
pub fn plane_match(
    bwt: &[u64; 4],
    cref: &[u64; 4],
    loaded: [u64; 2],
    policy: SimdPolicy,
) -> [u64; 2] {
    match policy {
        SimdPolicy::Scalar => plane_match_portable(bwt, cref, loaded),
        SimdPolicy::Auto => match lane() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: lane() returned Avx2 only after runtime detection.
            Lane::Avx2 => unsafe { plane_match_avx2(bwt, cref, loaded) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: lane() returned Sse2 only after runtime detection.
            Lane::Sse2 => unsafe { plane_match_sse2(bwt, cref, loaded) },
            Lane::Portable => plane_match_portable(bwt, cref, loaded),
        },
    }
}

/// The portable `[u64; 4]`-at-a-time evaluation — also the scalar
/// baseline (words 0..2 are plane 0, words 2..4 plane 1).
#[inline]
fn plane_match_portable(bwt: &[u64; 4], cref: &[u64; 4], loaded: [u64; 2]) -> [u64; 2] {
    [
        !(bwt[0] ^ cref[0]) & !(bwt[2] ^ cref[2]) & loaded[0],
        !(bwt[1] ^ cref[1]) & !(bwt[3] ^ cref[3]) & loaded[1],
    ]
}

/// AVX2: XNOR all four plane words in one 256-bit op, then AND the two
/// 128-bit plane halves together and against the loaded-length mask.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn plane_match_avx2(bwt: &[u64; 4], cref: &[u64; 4], loaded: [u64; 2]) -> [u64; 2] {
    use std::arch::x86_64::*;
    let b = _mm256_loadu_si256(bwt.as_ptr().cast());
    let c = _mm256_loadu_si256(cref.as_ptr().cast());
    // andnot(x, ones) = !x, so this is !(b ^ c) across both planes.
    let ones = _mm256_set1_epi64x(-1);
    let m = _mm256_andnot_si256(_mm256_xor_si256(b, c), ones);
    let plane0 = _mm256_castsi256_si128(m);
    let plane1 = _mm256_extracti128_si256::<1>(m);
    let limit = _mm_loadu_si128(loaded.as_ptr().cast());
    let r = _mm_and_si128(_mm_and_si128(plane0, plane1), limit);
    let mut out = [0u64; 2];
    _mm_storeu_si128(out.as_mut_ptr().cast(), r);
    out
}

/// SSE2: the same combine two words at a time (reached only on x86-64
/// hosts without AVX2 — SSE2 is baseline there).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn plane_match_sse2(bwt: &[u64; 4], cref: &[u64; 4], loaded: [u64; 2]) -> [u64; 2] {
    use std::arch::x86_64::*;
    let ones = _mm_set1_epi64x(-1);
    let p0 = _mm_andnot_si128(
        _mm_xor_si128(
            _mm_loadu_si128(bwt.as_ptr().cast()),
            _mm_loadu_si128(cref.as_ptr().cast()),
        ),
        ones,
    );
    let p1 = _mm_andnot_si128(
        _mm_xor_si128(
            _mm_loadu_si128(bwt.as_ptr().add(2).cast()),
            _mm_loadu_si128(cref.as_ptr().add(2).cast()),
        ),
        ones,
    );
    let limit = _mm_loadu_si128(loaded.as_ptr().cast());
    let r = _mm_and_si128(_mm_and_si128(p0, p1), limit);
    let mut out = [0u64; 2];
    _mm_storeu_si128(out.as_mut_ptr().cast(), r);
    out
}

/// Masked popcount of a 128-bit match vector: the number of set bits of
/// `mask & limit`. `Auto` uses the hardware `popcnt` instruction when
/// the CPU has one; `Scalar` (and CPUs without it) use the compiler's
/// software expansion.
#[inline]
pub fn masked_count(mask: [u64; 2], limit: [u64; 2], policy: SimdPolicy) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if policy == SimdPolicy::Auto && popcnt_available() {
        // SAFETY: popcnt_available() runtime-detected the instruction.
        return unsafe { masked_count_popcnt(mask, limit) };
    }
    let _ = policy;
    masked_count_portable(mask, limit)
}

#[inline]
fn masked_count_portable(mask: [u64; 2], limit: [u64; 2]) -> u32 {
    (mask[0] & limit[0]).count_ones() + (mask[1] & limit[1]).count_ones()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn masked_count_popcnt(mask: [u64; 2], limit: [u64; 2]) -> u32 {
    use std::arch::x86_64::_popcnt64;
    (_popcnt64((mask[0] & limit[0]) as i64) + _popcnt64((mask[1] & limit[1]) as i64)) as u32
}

/// Slots in the rank-checkpoint cache: one full sub-array's
/// `(bucket, base)` space (256 buckets × 4 bases), direct-mapped.
const CACHE_SLOTS: usize = 1024;

/// Tag value marking an unoccupied slot (no real platform maps
/// `u32::MAX` sub-arrays).
const EMPTY_TAG: u32 = u32::MAX;

/// Direct-mapped memoization of the `LFM` compare stage:
/// `(sub-array, bucket, base) → (post-sentinel match words, marker)`.
///
/// Both cached values are pure functions of the immutable mapped index
/// — the BWT/CRef/MT zones are written once at mapping time and the
/// sentinel column is fixed per reference — so an entry can never go
/// stale. The cache is **per-session** state (the shared `MappedIndex`
/// stays `&self`-only), deterministic (slot = `bucket * 4 + base`,
/// tag = sub-array index, an insert over a live foreign tag is an
/// eviction), and invisible to the simulated platform: callers charge
/// the same logical ops on a hit that the recompute would have charged,
/// and seeded fault draws keep operating on private per-request mask
/// copies downstream.
#[derive(Debug, Clone)]
pub struct KernelCache {
    tags: Vec<u32>,
    masks: Vec<[u64; 2]>,
    markers: Vec<u32>,
}

impl KernelCache {
    /// An empty cache (every slot unoccupied).
    pub fn new() -> KernelCache {
        KernelCache {
            tags: vec![EMPTY_TAG; CACHE_SLOTS],
            masks: vec![[0u64; 2]; CACHE_SLOTS],
            markers: vec![0u32; CACHE_SLOTS],
        }
    }

    #[inline]
    fn slot(bucket: usize, rank: usize) -> usize {
        (bucket * 4 + rank) & (CACHE_SLOTS - 1)
    }

    /// The cached `(mask words, marker)` for `(subarray, bucket, rank)`,
    /// if the slot holds exactly that key. The caller notes the
    /// hit/miss on its ledger.
    #[inline]
    pub fn lookup(&self, subarray: u32, bucket: usize, rank: usize) -> Option<([u64; 2], u32)> {
        let s = Self::slot(bucket, rank);
        (self.tags[s] == subarray).then(|| (self.masks[s], self.markers[s]))
    }

    /// Installs an entry; returns `true` when a live entry of a
    /// *different* sub-array was displaced (an eviction — same-tag
    /// overwrites are refreshes of identical data and slots start
    /// empty).
    #[inline]
    pub fn insert(
        &mut self,
        subarray: u32,
        bucket: usize,
        rank: usize,
        mask: [u64; 2],
        marker: u32,
    ) -> bool {
        let s = Self::slot(bucket, rank);
        let evicted = self.tags[s] != EMPTY_TAG && self.tags[s] != subarray;
        self.tags[s] = subarray;
        self.masks[s] = mask;
        self.markers[s] = marker;
        evicted
    }
}

impl Default for KernelCache {
    fn default() -> Self {
        KernelCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_and_names_round_trip() {
        assert_eq!("auto".parse::<SimdPolicy>(), Ok(SimdPolicy::Auto));
        assert_eq!("scalar".parse::<SimdPolicy>(), Ok(SimdPolicy::Scalar));
        assert!("AVX2".parse::<SimdPolicy>().is_err());
        assert!("".parse::<SimdPolicy>().is_err());
        for p in [SimdPolicy::Auto, SimdPolicy::Scalar] {
            assert_eq!(p.name().parse::<SimdPolicy>(), Ok(p));
        }
        assert_eq!(SimdPolicy::default(), SimdPolicy::Auto);
        assert!(SimdPolicy::Auto.cache_enabled());
        assert!(!SimdPolicy::Scalar.cache_enabled());
    }

    #[test]
    fn dispatched_path_is_stable_and_known() {
        let auto = dispatched_path(SimdPolicy::Auto);
        assert!(["avx2", "sse2", "portable"].contains(&auto), "{auto}");
        // Dispatch resolves once: repeated queries agree.
        assert_eq!(dispatched_path(SimdPolicy::Auto), auto);
        assert_eq!(dispatched_path(SimdPolicy::Scalar), "scalar");
    }

    /// Deterministic word-pattern generator for lane-equality sweeps.
    fn words(seed: u64) -> [u64; 4] {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut out = [0u64; 4];
        for w in &mut out {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *w = x;
        }
        out
    }

    #[test]
    fn every_lane_agrees_with_the_portable_combine() {
        for seed in 0..256u64 {
            let bwt = words(seed);
            let cref = words(seed.wrapping_add(1_000));
            for loaded in [[!0u64, !0u64], [!0, 0], [0xFFFF, 0], [0, 0], [!0, 1]] {
                let want = plane_match_portable(&bwt, &cref, loaded);
                assert_eq!(plane_match(&bwt, &cref, loaded, SimdPolicy::Scalar), want);
                assert_eq!(
                    plane_match(&bwt, &cref, loaded, SimdPolicy::Auto),
                    want,
                    "dispatched lane {} diverged at seed {seed}",
                    dispatched_path(SimdPolicy::Auto)
                );
            }
        }
    }

    #[test]
    fn masked_count_agrees_across_policies() {
        for seed in 0..256u64 {
            let w = words(seed);
            let mask = [w[0], w[1]];
            let limit = [w[2], w[3]];
            let want = masked_count_portable(mask, limit);
            assert_eq!(masked_count(mask, limit, SimdPolicy::Scalar), want);
            assert_eq!(masked_count(mask, limit, SimdPolicy::Auto), want);
        }
        assert_eq!(masked_count([!0, !0], [!0, !0], SimdPolicy::Auto), 128);
        assert_eq!(masked_count([!0, !0], [0, 0], SimdPolicy::Auto), 0);
    }

    #[test]
    fn cache_is_direct_mapped_with_tag_evictions() {
        let mut cache = KernelCache::new();
        assert_eq!(cache.lookup(0, 5, 2), None);
        // First insert occupies an empty slot: not an eviction.
        assert!(!cache.insert(0, 5, 2, [0xAB, 0xCD], 42));
        assert_eq!(cache.lookup(0, 5, 2), Some(([0xAB, 0xCD], 42)));
        // Same key refresh: still not an eviction.
        assert!(!cache.insert(0, 5, 2, [0xAB, 0xCD], 42));
        // A different sub-array misses the slot, and installing it
        // displaces the live entry: one eviction.
        assert_eq!(cache.lookup(7, 5, 2), None);
        assert!(cache.insert(7, 5, 2, [0x11, 0x22], 9));
        assert_eq!(cache.lookup(0, 5, 2), None);
        assert_eq!(cache.lookup(7, 5, 2), Some(([0x11, 0x22], 9)));
        // Distinct (bucket, rank) keys within one sub-array never
        // collide: the slot space covers all 256 × 4 of them.
        let mut cache = KernelCache::new();
        for bucket in 0..256 {
            for rank in 0..4 {
                assert!(!cache.insert(3, bucket, rank, [bucket as u64, rank as u64], 1));
            }
        }
        for bucket in 0..256 {
            for rank in 0..4 {
                assert_eq!(
                    cache.lookup(3, bucket, rank),
                    Some(([bucket as u64, rank as u64], 1))
                );
            }
        }
    }
}
