//! The Fig. 7 multi-read pipeline with parallelism degree `Pd`.
//!
//! Method-II duplicates a pipeline's sub-array so that while read `R1`
//! occupies the adder copy with `IM_ADD`, read `R2` exploits the freed
//! comparison resources of the original (paper Fig. 7). The model:
//!
//! * **Stage A** (compare sub-array): `XNOR_Match` + popcount + marker
//!   read — [`costs::lfm_stage_a_cycles`] = 29 cycles;
//! * **Transfer**: the marker and `count_match` stream into the adder
//!   copy through its write port — [`PipelineParams::transfer_cycles`]
//!   (7 cycles);
//! * **Stage B** (adder sub-array): `IM_ADD` + index update —
//!   [`costs::lfm_stage_b_cycles`] = 47 cycles.
//!
//! With `Pd = 1` (method-I) everything serialises in one sub-array and an
//! `LFM` costs the full 76 cycles. With `Pd = 2` the adder copy binds:
//! its port must absorb the transfer *and* the add, so the steady-state
//! issue rate is `transfer + stage_b` = 54 cycles — a
//! `76 / 54 ≈ 1.41×` speed-up, the paper's "improved the performance by
//! ∼40% compared to the baseline design". Larger `Pd` adds more adder
//! copies until the compare stage saturates.
//!
//! [`costs::lfm_stage_a_cycles`]: crate::costs::lfm_stage_a_cycles
//! [`costs::lfm_stage_b_cycles`]: crate::costs::lfm_stage_b_cycles

use crate::costs;

/// Stage timing of one pipeline (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineParams {
    /// Compare-stage cycles per `LFM`.
    pub stage_a_cycles: u64,
    /// Inter-sub-array transfer cycles per `LFM` (method-II only).
    pub transfer_cycles: u64,
    /// Add-stage cycles per `LFM`.
    pub stage_b_cycles: u64,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            stage_a_cycles: costs::lfm_stage_a_cycles(),
            transfer_cycles: 7,
            stage_b_cycles: costs::lfm_stage_b_cycles(),
        }
    }
}

impl PipelineParams {
    /// Sequential cycles of one `LFM` (method-I: both stages in the same
    /// sub-array, no transfer).
    pub fn sequential_cycles(&self) -> u64 {
        self.stage_a_cycles + self.stage_b_cycles
    }

    /// Steady-state cycles per `LFM` at parallelism degree `pd`.
    ///
    /// * `pd = 1`: no overlap — the sequential cost.
    /// * `pd ≥ 2`: `pd − 1` adder copies serve the add stage; each add
    ///   must also absorb its operand transfer through the copy's write
    ///   port. The issue rate is bound by the slower of the shared
    ///   compare stage and the adder copies:
    ///   `max(stage_a, transfer + stage_b / (pd − 1))`.
    ///
    /// # Panics
    ///
    /// Panics if `pd == 0`.
    pub fn cycles_per_lfm(&self, pd: usize) -> f64 {
        assert!(pd >= 1, "parallelism degree must be at least 1");
        if pd == 1 {
            return self.sequential_cycles() as f64;
        }
        let adder_rate =
            self.transfer_cycles as f64 + self.stage_b_cycles as f64 / (pd as f64 - 1.0);
        (self.stage_a_cycles as f64).max(adder_rate)
    }

    /// Throughput speed-up of degree `pd` over the sequential baseline.
    ///
    /// # Panics
    ///
    /// Panics if `pd == 0`.
    pub fn speedup(&self, pd: usize) -> f64 {
        self.sequential_cycles() as f64 / self.cycles_per_lfm(pd)
    }

    /// Makespan in cycles for `lfm_count` LFM invocations at degree
    /// `pd`, including the pipeline fill latency.
    ///
    /// # Panics
    ///
    /// Panics if `pd == 0`.
    pub fn makespan_cycles(&self, lfm_count: u64, pd: usize) -> f64 {
        if lfm_count == 0 {
            return 0.0;
        }
        let fill = if pd == 1 {
            0.0
        } else {
            (self.stage_a_cycles + self.transfer_cycles) as f64
        };
        fill + lfm_count as f64 * self.cycles_per_lfm(pd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_cost_table() {
        let p = PipelineParams::default();
        assert_eq!(p.stage_a_cycles, 29);
        assert_eq!(p.stage_b_cycles, 47);
        assert_eq!(p.sequential_cycles(), 76);
    }

    #[test]
    fn pd2_speedup_is_about_forty_percent() {
        // Paper §VI: "our pipeline technique with Pd=2 has improved the
        // performance by ∼40% compared to the baseline design".
        let s = PipelineParams::default().speedup(2);
        assert!((1.30..1.55).contains(&s), "Pd=2 speed-up {s:.3}");
    }

    #[test]
    fn speedup_monotone_then_saturates_at_compare_stage() {
        let p = PipelineParams::default();
        let mut prev = p.speedup(1);
        assert!((prev - 1.0).abs() < 1e-12);
        for pd in 2..=8 {
            let s = p.speedup(pd);
            assert!(s >= prev - 1e-12, "speed-up regressed at Pd={pd}");
            prev = s;
        }
        // Saturation: the shared compare stage (29 cycles) bounds the rate.
        let saturated = p.sequential_cycles() as f64 / p.stage_a_cycles as f64;
        assert!((p.speedup(64) - saturated).abs() < 1e-9);
    }

    #[test]
    fn makespan_includes_fill_only_when_pipelined() {
        let p = PipelineParams::default();
        assert_eq!(p.makespan_cycles(10, 1), 760.0);
        let piped = p.makespan_cycles(10, 2);
        assert!(piped < 760.0 && piped > 10.0 * p.cycles_per_lfm(2));
        assert_eq!(p.makespan_cycles(0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_pd_panics() {
        let _ = PipelineParams::default().cycles_per_lfm(0);
    }
}
