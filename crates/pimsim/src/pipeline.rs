//! The Fig. 7 multi-read pipeline with parallelism degree `Pd`.
//!
//! Method-II duplicates a pipeline's sub-array so that while read `R1`
//! occupies the adder copy with `IM_ADD`, read `R2` exploits the freed
//! comparison resources of the original (paper Fig. 7). The model:
//!
//! * **Stage A** (compare sub-array): `XNOR_Match` + popcount + marker
//!   read — [`costs::lfm_stage_a_cycles`] = 29 cycles;
//! * **Transfer**: the marker and `count_match` stream into the adder
//!   copy through its write port — [`PipelineParams::transfer_cycles`]
//!   (7 cycles);
//! * **Stage B** (adder sub-array): `IM_ADD` + index update —
//!   [`costs::lfm_stage_b_cycles`] = 47 cycles.
//!
//! With `Pd = 1` (method-I) everything serialises in one sub-array and an
//! `LFM` costs the full 76 cycles. With `Pd = 2` the adder copy binds:
//! its port must absorb the transfer *and* the add, so the steady-state
//! issue rate is `transfer + stage_b` = 54 cycles — a
//! `76 / 54 ≈ 1.41×` speed-up, the paper's "improved the performance by
//! ∼40% compared to the baseline design". Larger `Pd` adds more adder
//! copies until the compare stage saturates.
//!
//! [`costs::lfm_stage_a_cycles`]: crate::costs::lfm_stage_a_cycles
//! [`costs::lfm_stage_b_cycles`]: crate::costs::lfm_stage_b_cycles

use crate::costs;

/// Stage timing of one pipeline (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineParams {
    /// Compare-stage cycles per `LFM`.
    pub stage_a_cycles: u64,
    /// Inter-sub-array transfer cycles per `LFM` (method-II only).
    pub transfer_cycles: u64,
    /// Add-stage cycles per `LFM`.
    pub stage_b_cycles: u64,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            stage_a_cycles: costs::lfm_stage_a_cycles(),
            transfer_cycles: 7,
            stage_b_cycles: costs::lfm_stage_b_cycles(),
        }
    }
}

impl PipelineParams {
    /// Sequential cycles of one `LFM` (method-I: both stages in the same
    /// sub-array, no transfer).
    pub fn sequential_cycles(&self) -> u64 {
        self.stage_a_cycles + self.stage_b_cycles
    }

    /// Steady-state cycles per `LFM` at parallelism degree `pd`.
    ///
    /// * `pd = 1`: no overlap — the sequential cost.
    /// * `pd ≥ 2`: `pd − 1` adder copies serve the add stage; each add
    ///   must also absorb its operand transfer through the copy's write
    ///   port. The issue rate is bound by the slower of the shared
    ///   compare stage and the adder copies:
    ///   `max(stage_a, transfer + stage_b / (pd − 1))`.
    ///
    /// # Panics
    ///
    /// Panics if `pd == 0`.
    pub fn cycles_per_lfm(&self, pd: usize) -> f64 {
        assert!(pd >= 1, "parallelism degree must be at least 1");
        if pd == 1 {
            return self.sequential_cycles() as f64;
        }
        let adder_rate =
            self.transfer_cycles as f64 + self.stage_b_cycles as f64 / (pd as f64 - 1.0);
        (self.stage_a_cycles as f64).max(adder_rate)
    }

    /// Throughput speed-up of degree `pd` over the sequential baseline.
    ///
    /// # Panics
    ///
    /// Panics if `pd == 0`.
    pub fn speedup(&self, pd: usize) -> f64 {
        self.sequential_cycles() as f64 / self.cycles_per_lfm(pd)
    }

    /// Makespan in cycles for `lfm_count` LFM invocations at degree
    /// `pd`, including the pipeline fill latency.
    ///
    /// # Panics
    ///
    /// Panics if `pd == 0`.
    pub fn makespan_cycles(&self, lfm_count: u64, pd: usize) -> f64 {
        if lfm_count == 0 {
            return 0.0;
        }
        let fill = if pd == 1 {
            0.0
        } else {
            (self.stage_a_cycles + self.transfer_cycles) as f64
        };
        fill + lfm_count as f64 * self.cycles_per_lfm(pd)
    }
}

/// Scheduling counters accumulated by [`PipelineSim`] and folded into
/// the session ledger.
///
/// `sequential_cycles` is what the same issues would have cost with no
/// overlap at all (every non-shared compare plus every add, back to
/// back); `makespan_cycles` is when the last issue actually finished
/// under the stage-queue schedule. Their difference is the overlap the
/// pipeline bought. Counters from separate batch invocations merge by
/// summation — batches on one sub-array run back to back, so makespans
/// add.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineCounters {
    /// LFM issues scheduled.
    pub issued: u64,
    /// Cycle the last issue retired under the pipelined schedule.
    pub makespan_cycles: u64,
    /// What the same issues cost unpipelined, back to back.
    pub sequential_cycles: u64,
}

impl PipelineCounters {
    /// Cycles the stage overlap saved versus the serial schedule. Zero
    /// when the pipeline could not help (e.g. `Pd = 1`, or a batch of
    /// one where the transfer overhead eats the overlap).
    pub fn overlap_saved_cycles(&self) -> u64 {
        self.sequential_cycles.saturating_sub(self.makespan_cycles)
    }

    /// Folds another counter set in (summation; see the type docs).
    pub fn merge(&mut self, other: &PipelineCounters) {
        self.issued += other.issued;
        self.makespan_cycles += other.makespan_cycles;
        self.sequential_cycles += other.sequential_cycles;
    }
}

/// The Pd stage-queue scheduler: actual issue ordering for one batch of
/// interleaved LFM steps against one sub-array.
///
/// Each [`PipelineSim::issue`] places one read-step into the two-slot
/// stage queue: the compare stage (shared original sub-array) and the
/// add stage (the `Pd − 1` adder copies, modelled as one server with a
/// `transfer + stage_b / (Pd − 1)` service time). Issues from different
/// read streams overlap — read `i + 1`'s compare runs while read `i`'s
/// add occupies the copy — but two issues of the *same* stream are
/// dependent (an `LFM`'s operands are the previous step's interval), so
/// a stream's next issue cannot start before its previous one retired.
///
/// With `Pd = 1` there is one sub-array and no overlap: every issue
/// serialises. The simulator is transient scratch state — only its
/// [`PipelineCounters`] survive, folded into the [`CycleLedger`]
/// (`crate::CycleLedger`) by the caller.
#[derive(Debug, Clone)]
pub struct PipelineSim {
    pd: usize,
    params: PipelineParams,
    /// When the compare stage frees (Pd ≥ 2) / when the single
    /// sub-array frees (Pd = 1).
    compare_free: u64,
    /// When the adder-copy server frees (Pd ≥ 2 only).
    add_free: u64,
    /// Per-stream retire times: stream `s`'s next issue starts no
    /// earlier than `stream_done[s]`.
    stream_done: Vec<u64>,
    counters: PipelineCounters,
}

impl PipelineSim {
    /// A fresh scheduler at parallelism degree `pd`.
    ///
    /// # Panics
    ///
    /// Panics if `pd == 0`.
    pub fn new(pd: usize, params: PipelineParams) -> PipelineSim {
        assert!(pd >= 1, "parallelism degree must be at least 1");
        PipelineSim {
            pd,
            params,
            compare_free: 0,
            add_free: 0,
            stream_done: Vec::new(),
            counters: PipelineCounters::default(),
        }
    }

    /// Rewinds the scheduler to an empty schedule at degree `pd`,
    /// keeping the per-stream table's capacity (the batched kernel
    /// recycles one simulator across calls).
    ///
    /// # Panics
    ///
    /// Panics if `pd == 0`.
    pub fn reset(&mut self, pd: usize, params: PipelineParams) {
        assert!(pd >= 1, "parallelism degree must be at least 1");
        self.pd = pd;
        self.params = params;
        self.compare_free = 0;
        self.add_free = 0;
        self.stream_done.clear();
        self.counters = PipelineCounters::default();
    }

    /// Schedules one LFM step of read stream `stream`. A
    /// `shared_compare` issue rides a compare the batch already paid for
    /// (another stream loaded the same bucket row this step), so only
    /// its add occupies a stage.
    pub fn issue(&mut self, stream: usize, shared_compare: bool) {
        let compare_cost = if shared_compare {
            0
        } else {
            self.params.stage_a_cycles
        };
        let ready = self.stream_done.get(stream).copied().unwrap_or(0);
        let done = if self.pd == 1 {
            // One sub-array does both stages; issues fully serialise.
            let start = self.compare_free.max(ready);
            let done = start + compare_cost + self.params.stage_b_cycles;
            self.compare_free = done;
            done
        } else {
            let compare_done = self.compare_free.max(ready) + compare_cost;
            let add_service = self.params.transfer_cycles
                + self.params.stage_b_cycles.div_ceil(self.pd as u64 - 1);
            let done = compare_done.max(self.add_free) + add_service;
            self.compare_free = compare_done;
            self.add_free = done;
            done
        };
        if stream >= self.stream_done.len() {
            self.stream_done.resize(stream + 1, 0);
        }
        self.stream_done[stream] = done;
        self.counters.issued += 1;
        self.counters.sequential_cycles += compare_cost + self.params.stage_b_cycles;
        self.counters.makespan_cycles = self.counters.makespan_cycles.max(done);
    }

    /// The counters accumulated so far (fold into a ledger via
    /// `CycleLedger::record_pipeline`).
    pub fn counters(&self) -> PipelineCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_cost_table() {
        let p = PipelineParams::default();
        assert_eq!(p.stage_a_cycles, 29);
        assert_eq!(p.stage_b_cycles, 47);
        assert_eq!(p.sequential_cycles(), 76);
    }

    #[test]
    fn pd2_speedup_is_about_forty_percent() {
        // Paper §VI: "our pipeline technique with Pd=2 has improved the
        // performance by ∼40% compared to the baseline design".
        let s = PipelineParams::default().speedup(2);
        assert!((1.30..1.55).contains(&s), "Pd=2 speed-up {s:.3}");
    }

    #[test]
    fn speedup_monotone_then_saturates_at_compare_stage() {
        let p = PipelineParams::default();
        let mut prev = p.speedup(1);
        assert!((prev - 1.0).abs() < 1e-12);
        for pd in 2..=8 {
            let s = p.speedup(pd);
            assert!(s >= prev - 1e-12, "speed-up regressed at Pd={pd}");
            prev = s;
        }
        // Saturation: the shared compare stage (29 cycles) bounds the rate.
        let saturated = p.sequential_cycles() as f64 / p.stage_a_cycles as f64;
        assert!((p.speedup(64) - saturated).abs() < 1e-9);
    }

    #[test]
    fn makespan_includes_fill_only_when_pipelined() {
        let p = PipelineParams::default();
        assert_eq!(p.makespan_cycles(10, 1), 760.0);
        let piped = p.makespan_cycles(10, 2);
        assert!(piped < 760.0 && piped > 10.0 * p.cycles_per_lfm(2));
        assert_eq!(p.makespan_cycles(0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_pd_panics() {
        let _ = PipelineParams::default().cycles_per_lfm(0);
    }

    /// Issues `n` independent streams' steps at degree `pd` and returns
    /// the counters.
    fn run_streams(pd: usize, n: usize) -> PipelineCounters {
        let mut sim = PipelineSim::new(pd, PipelineParams::default());
        for s in 0..n {
            sim.issue(s, false);
        }
        sim.counters()
    }

    #[test]
    fn pd1_serialises_every_issue() {
        let c = run_streams(1, 8);
        assert_eq!(c.issued, 8);
        assert_eq!(c.makespan_cycles, 8 * 76);
        assert_eq!(c.sequential_cycles, 8 * 76);
        assert_eq!(c.overlap_saved_cycles(), 0);
    }

    #[test]
    fn pd2_overlaps_independent_streams() {
        // Steady state: the adder copy binds at transfer + stage_b = 54
        // cycles per issue, after a 29-cycle compare fill.
        let c = run_streams(2, 8);
        assert_eq!(c.makespan_cycles, 29 + 8 * 54);
        assert_eq!(c.sequential_cycles, 8 * 76);
        assert!(c.makespan_cycles < c.sequential_cycles);
        assert_eq!(
            c.overlap_saved_cycles(),
            c.sequential_cycles - c.makespan_cycles
        );
    }

    #[test]
    fn pd2_single_issue_saves_nothing() {
        // A batch of one pays the transfer on top of both stages; the
        // saved-cycles counter saturates at zero rather than going
        // negative.
        let c = run_streams(2, 1);
        assert_eq!(c.makespan_cycles, 29 + 7 + 47);
        assert_eq!(c.sequential_cycles, 76);
        assert_eq!(c.overlap_saved_cycles(), 0);
    }

    #[test]
    fn same_stream_issues_are_dependent() {
        // Two steps of one read cannot overlap: the second waits for the
        // first to retire, so Pd=2 is strictly slower than two
        // independent streams.
        let mut sim = PipelineSim::new(2, PipelineParams::default());
        sim.issue(0, false);
        sim.issue(0, false);
        let dependent = sim.counters().makespan_cycles;
        let independent = run_streams(2, 2).makespan_cycles;
        assert!(dependent > independent, "{dependent} vs {independent}");
        assert_eq!(dependent, 2 * (29 + 54));
    }

    #[test]
    fn shared_compare_issues_skip_stage_a() {
        let mut sim = PipelineSim::new(1, PipelineParams::default());
        sim.issue(0, false);
        sim.issue(1, true);
        let c = sim.counters();
        assert_eq!(c.makespan_cycles, 76 + 47);
        assert_eq!(c.sequential_cycles, 76 + 47);
    }

    #[test]
    fn counters_merge_by_summation() {
        let mut a = run_streams(2, 4);
        let b = run_streams(2, 4);
        a.merge(&b);
        assert_eq!(a.issued, 8);
        assert_eq!(a.makespan_cycles, 2 * (29 + 4 * 54));
        assert_eq!(a.sequential_cycles, 8 * 76);
    }
}
