//! Fault injection for the platform simulator (DESIGN.md §8).
//!
//! [`FaultInjector`] turns a seeded [`FaultCampaign`] into concrete fault
//! decisions — which match bits misread, which rows suffer a transient
//! burst, which additions drop their carry, which cells are stuck — and
//! counts every injection so the telemetry layer can report what the
//! campaign actually did.
//!
//! The injector is deliberately mechanism-only: *where* each fault class
//! plugs into the `LFM` data path is decided by the index mapper, which
//! owns the sub-arrays.

use mram::faults::FaultCampaign;

use crate::subarray::MatchMask;

/// Longest transient burst, bits (a worst-case triple-row sense glitch).
const MAX_BURST_BITS: usize = 4;

/// Counters of injected faults, one per campaign fault class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Data-zone cells frozen by stuck-at injection at mapping time.
    pub stuck_cells: u64,
    /// Individual `XNOR_Match` bits flipped by sense misreads.
    pub xnor_bit_flips: u64,
    /// Transient row-read burst events.
    pub transient_row_faults: u64,
    /// `IM_ADD` executions with a killed carry chain.
    pub carry_faults: u64,
}

impl FaultCounters {
    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.stuck_cells += other.stuck_cells;
        self.xnor_bit_flips += other.xnor_bit_flips;
        self.transient_row_faults += other.transient_row_faults;
        self.carry_faults += other.carry_faults;
    }

    /// Total fault events injected (stuck cells count once each).
    pub fn total(&self) -> u64 {
        self.stuck_cells + self.xnor_bit_flips + self.transient_row_faults + self.carry_faults
    }
}

/// Samples fault decisions from a seeded campaign and counts them.
///
/// Determinism: the decision stream is a pure function of the campaign
/// (including its seed) and the order of sampling calls, so a rebuilt
/// platform replays the identical fault history.
///
/// # Examples
///
/// ```
/// use mram::faults::FaultCampaign;
/// use pimsim::FaultInjector;
///
/// let campaign = FaultCampaign::seeded(3).with_carry_fault_prob(1.0);
/// let mut injector = FaultInjector::new(campaign);
/// // A certain carry fault always yields a kill position.
/// assert!(injector.carry_fault_bit().is_some());
/// assert_eq!(injector.counters().carry_faults, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    campaign: FaultCampaign,
    rng: u64,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Creates an injector for `campaign`, seeding the decision stream
    /// from the campaign seed.
    pub fn new(campaign: FaultCampaign) -> FaultInjector {
        // SplitMix64 of the seed guarantees a non-zero xorshift state
        // even for seed 0.
        let mut z = campaign.seed().wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        FaultInjector {
            campaign,
            rng: z | 1,
            counters: FaultCounters::default(),
        }
    }

    /// The campaign driving this injector.
    pub fn campaign(&self) -> &FaultCampaign {
        &self.campaign
    }

    /// Injection counts so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Folds another injector's counts into this one's. The batched
    /// kernel path runs each read against its own per-read injector
    /// ([`FaultCampaign::for_read`]) and absorbs the counts back into
    /// the session injector, so session telemetry stays a single total
    /// regardless of how reads were batched.
    pub fn absorb_counters(&mut self, other: &FaultCounters) {
        self.counters.merge(other);
    }

    /// `true` when any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.campaign.is_active()
    }

    /// One xorshift64 step.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// A uniform draw in `[0, 1)`.
    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform index in `0..n` (`n > 0`).
    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Applies per-bit sense misreads to a match vector (probability =
    /// the campaign model's `xnor_misread_prob`). Returns the number of
    /// bits flipped.
    pub fn corrupt_match_bits(&mut self, bits: &mut [bool]) -> u64 {
        let p = self.campaign.model().xnor_misread_prob();
        if p <= 0.0 {
            return 0;
        }
        let mut flips = 0;
        for bit in bits.iter_mut() {
            if self.uniform() < p {
                *bit = !*bit;
                flips += 1;
            }
        }
        self.counters.xnor_bit_flips += flips;
        flips
    }

    /// With the campaign's transient-row rate, flips a short burst of
    /// adjacent bits somewhere in the row. Returns `true` when a burst
    /// fired.
    pub fn transient_row_fault(&mut self, row: &mut [bool]) -> bool {
        let p = self.campaign.transient_row_rate();
        if p <= 0.0 || row.is_empty() || self.uniform() >= p {
            return false;
        }
        let burst = 1 + self.index(MAX_BURST_BITS);
        let start = self.index(row.len());
        for bit in row.iter_mut().skip(start).take(burst) {
            *bit = !*bit;
        }
        self.counters.transient_row_faults += 1;
        true
    }

    /// Mask form of [`FaultInjector::corrupt_match_bits`]: applies
    /// per-bit sense misreads to the first `limit` bits of a packed
    /// match mask. Draws exactly one uniform per bit in ascending bit
    /// order — the identical RNG stream as the boolean form over a
    /// `limit`-length slice — so seeded replays stay bit-identical
    /// across the two representations. Returns the number of bits
    /// flipped.
    ///
    /// # Panics
    ///
    /// Panics if `limit > 128`.
    pub fn corrupt_match_mask(&mut self, mask: &mut MatchMask, limit: usize) -> u64 {
        assert!(limit <= MatchMask::BITS, "misread limit out of range");
        let p = self.campaign.model().xnor_misread_prob();
        if p <= 0.0 {
            return 0;
        }
        let mut flips = 0;
        for i in 0..limit {
            if self.uniform() < p {
                mask.flip(i);
                flips += 1;
            }
        }
        self.counters.xnor_bit_flips += flips;
        flips
    }

    /// Mask form of [`FaultInjector::transient_row_fault`] over the full
    /// 128-bit match vector: same decision stream (one uniform, then —
    /// only when the burst fires — a burst-length draw and a start draw),
    /// so a seeded replay produces the identical fault history whichever
    /// representation the caller uses. Returns `true` when a burst fired.
    pub fn transient_row_mask(&mut self, mask: &mut MatchMask) -> bool {
        let p = self.campaign.transient_row_rate();
        if p <= 0.0 || self.uniform() >= p {
            return false;
        }
        let burst = 1 + self.index(MAX_BURST_BITS);
        let start = self.index(MatchMask::BITS);
        for i in start..(start + burst).min(MatchMask::BITS) {
            mask.flip(i);
        }
        self.counters.transient_row_faults += 1;
        true
    }

    /// With the campaign's carry-fault probability, picks the bit
    /// position (0..32) at which the next `IM_ADD`'s carry chain dies.
    pub fn carry_fault_bit(&mut self) -> Option<usize> {
        let p = self.campaign.carry_fault_prob();
        if p <= 0.0 || self.uniform() >= p {
            return None;
        }
        self.counters.carry_faults += 1;
        Some(self.index(32))
    }

    /// Samples the stuck-at plan for one sub-array's data zone: for each
    /// cell in `rows × cols`, with the campaign's stuck-at rate the cell
    /// is frozen to a random value. Returns `(row, col, value)` triples.
    pub fn stuck_cell_plan(&mut self, rows: usize, cols: usize) -> Vec<(usize, usize, bool)> {
        let rate = self.campaign.stuck_at_rate();
        if rate <= 0.0 {
            return Vec::new();
        }
        let mut plan = Vec::new();
        for row in 0..rows {
            for col in 0..cols {
                if self.uniform() < rate {
                    plan.push((row, col, self.next_u64() & 1 == 1));
                }
            }
        }
        self.counters.stuck_cells += plan.len() as u64;
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mram::faults::FaultModel;

    fn noisy_campaign(seed: u64) -> FaultCampaign {
        FaultCampaign::seeded(seed)
            .with_model(FaultModel::with_probabilities(0.05, 0.0))
            .with_transient_row_rate(0.1)
            .with_carry_fault_prob(0.1)
            .with_stuck_at_rate(0.01)
    }

    #[test]
    fn inactive_campaign_never_fires() {
        let mut injector = FaultInjector::new(FaultCampaign::none());
        let mut bits = vec![true; 128];
        assert_eq!(injector.corrupt_match_bits(&mut bits), 0);
        assert!(!injector.transient_row_fault(&mut bits));
        assert!(injector.carry_fault_bit().is_none());
        assert!(injector.stuck_cell_plan(512, 256).is_empty());
        assert_eq!(injector.counters(), FaultCounters::default());
        assert!(bits.iter().all(|&b| b));
    }

    #[test]
    fn same_seed_replays_identical_decisions() {
        let mut a = FaultInjector::new(noisy_campaign(42));
        let mut b = FaultInjector::new(noisy_campaign(42));
        for _ in 0..50 {
            let mut row_a = vec![false; 128];
            let mut row_b = vec![false; 128];
            assert_eq!(
                a.corrupt_match_bits(&mut row_a),
                b.corrupt_match_bits(&mut row_b)
            );
            assert_eq!(row_a, row_b);
            assert_eq!(
                a.transient_row_fault(&mut row_a),
                b.transient_row_fault(&mut row_b)
            );
            assert_eq!(row_a, row_b);
            assert_eq!(a.carry_fault_bit(), b.carry_fault_bit());
        }
        assert_eq!(a.stuck_cell_plan(388, 256), b.stuck_cell_plan(388, 256));
        assert_eq!(a.counters(), b.counters());
        assert!(a.counters().total() > 0, "noisy campaign must fire");
    }

    #[test]
    fn mask_fault_apis_replay_the_boolean_stream() {
        // The packed-mask fault path must draw the exact RNG stream of
        // the boolean path: same decisions, same flipped bits, same
        // counters — this is what keeps seeded replays representation-
        // independent.
        let mut bool_injector = FaultInjector::new(noisy_campaign(99));
        let mut mask_injector = FaultInjector::new(noisy_campaign(99));
        for round in 0..200usize {
            let mut row = vec![false; 128];
            for i in (round % 5..128).step_by(3) {
                row[i] = true;
            }
            let mut mask = MatchMask::from_bools(&row);
            assert_eq!(
                bool_injector.transient_row_fault(&mut row),
                mask_injector.transient_row_mask(&mut mask),
                "burst decision diverged at round {round}"
            );
            let limit = (round * 37) % 129;
            assert_eq!(
                bool_injector.corrupt_match_bits(&mut row[..limit]),
                mask_injector.corrupt_match_mask(&mut mask, limit),
                "misread count diverged at round {round}"
            );
            assert_eq!(mask.to_bools(), row, "contents diverged at round {round}");
        }
        assert_eq!(bool_injector.counters(), mask_injector.counters());
        assert!(bool_injector.counters().total() > 0, "campaign must fire");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(noisy_campaign(1));
        let mut b = FaultInjector::new(noisy_campaign(2));
        let mut any_difference = false;
        for _ in 0..50 {
            let mut row_a = vec![false; 128];
            let mut row_b = vec![false; 128];
            a.corrupt_match_bits(&mut row_a);
            b.corrupt_match_bits(&mut row_b);
            any_difference |= row_a != row_b;
        }
        assert!(any_difference, "seeds 1 and 2 produced identical streams");
    }

    #[test]
    fn stuck_plan_rate_is_respected() {
        let campaign = FaultCampaign::seeded(5).with_stuck_at_rate(0.01);
        let mut injector = FaultInjector::new(campaign);
        let plan = injector.stuck_cell_plan(388, 256);
        let cells = 388 * 256;
        let expected = cells as f64 * 0.01;
        // Within ±50 % of the expectation (binomial, ~1k expected).
        assert!(
            (plan.len() as f64) > expected * 0.5 && (plan.len() as f64) < expected * 1.5,
            "{} stuck cells for expectation {expected}",
            plan.len()
        );
        assert_eq!(injector.counters().stuck_cells, plan.len() as u64);
        assert!(plan.iter().all(|&(r, c, _)| r < 388 && c < 256));
    }

    #[test]
    fn counters_merge_adds_fields() {
        let mut a = FaultCounters {
            stuck_cells: 1,
            xnor_bit_flips: 2,
            transient_row_faults: 3,
            carry_faults: 4,
        };
        let b = FaultCounters {
            stuck_cells: 10,
            xnor_bit_flips: 20,
            transient_row_faults: 30,
            carry_faults: 40,
        };
        a.merge(&b);
        assert_eq!(a.total(), 110);
    }
}
