//! The interleaved multi-read LFM batch kernel.
//!
//! A single-read `LFM` step pays one `XNOR_Match` row read and one
//! marker read per call, even when several queued reads interrogate the
//! *same* bucket of the same sub-array in the same step — the plane
//! load produces the full 128-bit match vector either way, and the
//! marker word is a pure function of `(bucket, base)`. [`LfmBatch`]
//! exploits that: it collects R reads' concurrent LFM requests against
//! one sub-array in struct-of-arrays form, deduplicates them into
//! `(bucket, base)` *groups*, and charges/executes the shared compare
//! stage (`XNOR_Match`, sentinel masking, marker read) once per group
//! instead of once per request. Per-request work — the popcount over
//! the request's own prefix, its fault injection, its `IM_ADD` — stays
//! per request, downstream of the shared masks.
//!
//! Fault draw-order contract: the shared compare stage is fault-free
//! plane data (faults model the per-read *sensing* of that data), so
//! the batch applies each request's transient-burst and sense-misread
//! draws to a private copy of its group mask, **in request push order**.
//! A read whose low and high requests were pushed in that order
//! therefore consumes its injector stream in exactly the single-read
//! call sequence, whatever groups the batch formed around it.

use bioseq::Base;

use crate::costs::LogicalOp;
use crate::faults::FaultInjector;
use crate::ledger::CycleLedger;
use crate::simd::{KernelCache, SimdPolicy};
use crate::subarray::{MatchMask, SubArray};

/// A batch of interleaved LFM compare-stage requests against one
/// sub-array, struct-of-arrays: parallel vectors indexed by request.
#[derive(Debug, Clone, Default)]
pub struct LfmBatch {
    /// Read stream each request belongs to (indexes the caller's
    /// per-read injector table).
    streams: Vec<usize>,
    /// Local bucket row of each request.
    buckets: Vec<usize>,
    /// Query base of each request.
    bases: Vec<Base>,
    /// Popcount prefix limit of each request (`id % 128`).
    withins: Vec<usize>,
    /// Group index of each request (filled by
    /// [`LfmBatch::run_compare`]).
    group_of: Vec<usize>,
    /// Whether the request is its group's first occurrence — the one
    /// that physically pays the plane load.
    leaders: Vec<bool>,
    /// Per-group key, in first-occurrence order.
    group_keys: Vec<(usize, Base)>,
    /// Per-group shared match mask (sentinel already cleared).
    masks: Vec<MatchMask>,
    /// Per-group marker word.
    markers: Vec<u32>,
}

impl LfmBatch {
    /// An empty batch.
    pub fn new() -> LfmBatch {
        LfmBatch::default()
    }

    /// Empties the batch for reuse, keeping every vector's capacity (the
    /// hot batched-kernel path recycles one `LfmBatch` per sub-array
    /// across calls instead of reallocating nine vectors each step).
    pub fn clear(&mut self) {
        self.streams.clear();
        self.buckets.clear();
        self.bases.clear();
        self.withins.clear();
        self.group_of.clear();
        self.leaders.clear();
        self.group_keys.clear();
        self.masks.clear();
        self.markers.clear();
    }

    /// Queues one request; returns its request index. Push order is the
    /// fault draw order — push a read's low request before its high
    /// request.
    ///
    /// # Panics
    ///
    /// Panics if `within > 128` or the compare stage already ran.
    pub fn push(&mut self, stream: usize, bucket: usize, base: Base, within: usize) -> usize {
        assert!(within <= MatchMask::BITS, "prefix limit out of range");
        assert!(self.masks.is_empty(), "batch already executed");
        self.streams.push(stream);
        self.buckets.push(bucket);
        self.bases.push(base);
        self.withins.push(within);
        self.streams.len() - 1
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// `true` when no request is queued.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Number of `(bucket, base)` groups formed (0 before
    /// [`LfmBatch::run_compare`]).
    pub fn group_count(&self) -> usize {
        self.group_keys.len()
    }

    /// The read stream of request `i`.
    pub fn stream(&self, i: usize) -> usize {
        self.streams[i]
    }

    /// The prefix limit of request `i`.
    pub fn within(&self, i: usize) -> usize {
        self.withins[i]
    }

    /// Whether request `i` paid its group's plane load (the first
    /// occurrence of its `(bucket, base)` key).
    pub fn is_leader(&self, i: usize) -> bool {
        self.leaders[i]
    }

    /// The shared (clean) match mask of request `i`'s group.
    pub fn mask(&self, i: usize) -> &MatchMask {
        &self.masks[self.group_of[i]]
    }

    /// The marker word of request `i`'s group.
    pub fn marker(&self, i: usize) -> u32 {
        self.markers[self.group_of[i]]
    }

    /// Executes the shared compare stage: deduplicates the queued
    /// requests into `(bucket, base)` groups (first-occurrence order)
    /// and, once per group, charges + performs the `XNOR_Match` plane
    /// load, clears the sentinel column (`sentinel` = the sentinel's
    /// `(bucket, column)` when it lives in this sub-array), and reads
    /// the marker word. Returns the group count.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn run_compare(
        &mut self,
        sub: &SubArray,
        sentinel: Option<(usize, usize)>,
        ledger: &mut CycleLedger,
    ) -> usize {
        self.run_compare_with(sub, sentinel, SimdPolicy::Scalar, None, 0, ledger)
    }

    /// [`LfmBatch::run_compare`] under a SIMD policy and an optional
    /// rank-checkpoint cache (tagged with this sub-array's global
    /// index). A cache hit skips the plane load and the 32-row marker
    /// gather on the *host* but charges the platform the exact
    /// `XNOR_Match` + marker-read sequence the recompute pays — masks,
    /// markers, every ledger field and the fault draw order are
    /// byte-identical with and without the cache, pinned by test.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn run_compare_with(
        &mut self,
        sub: &SubArray,
        sentinel: Option<(usize, usize)>,
        policy: SimdPolicy,
        mut cache: Option<&mut KernelCache>,
        subarray_tag: u32,
        ledger: &mut CycleLedger,
    ) -> usize {
        assert!(
            self.masks.is_empty() && self.group_of.is_empty(),
            "batch already executed"
        );
        for i in 0..self.streams.len() {
            let key = (self.buckets[i], self.bases[i]);
            // Batches are small (≤ a few dozen groups); a linear key
            // scan beats hashing here.
            let existing = self.group_keys.iter().position(|&k| k == key);
            let group = match existing {
                Some(g) => g,
                None => {
                    let cached = cache
                        .as_deref()
                        .and_then(|c| c.lookup(subarray_tag, key.0, key.1.rank()));
                    let (mask, marker) = match cached {
                        Some((words, marker)) => {
                            // Same charges, same order, as the miss path
                            // below (XNOR_Match inside xnor_match, then
                            // the marker MEM read) — only host work is
                            // skipped.
                            ledger.note_kernel_cache_hit();
                            LogicalOp::XnorMatch.charge(sub.model(), ledger);
                            LogicalOp::MarkerRead.charge(sub.model(), ledger);
                            (MatchMask(words), marker)
                        }
                        None => {
                            let mut mask = sub.xnor_match_with(key.0, key.1, policy, ledger);
                            if let Some((bucket, col)) = sentinel {
                                if bucket == key.0 {
                                    mask.set(col, false);
                                }
                            }
                            let marker = sub.read_marker(key.0, key.1, ledger);
                            if let Some(c) = cache.as_deref_mut() {
                                ledger.note_kernel_cache_miss();
                                if c.insert(subarray_tag, key.0, key.1.rank(), mask.0, marker) {
                                    ledger.note_kernel_cache_eviction();
                                }
                            }
                            (mask, marker)
                        }
                    };
                    self.group_keys.push(key);
                    self.masks.push(mask);
                    self.markers.push(marker);
                    self.group_keys.len() - 1
                }
            };
            self.leaders.push(existing.is_none());
            self.group_of.push(group);
        }
        self.group_keys.len()
    }

    /// Per-request count stage over an executed batch: for each request
    /// in push order, charges one popcount and counts the set bits in
    /// its prefix — through a privately faulted copy of the group mask
    /// when the request's injector is active (transient burst first,
    /// then per-bit misreads, exactly the single-read draw order).
    /// `injectors` is indexed by request stream; pass an empty slice
    /// when the campaign is inactive.
    ///
    /// # Panics
    ///
    /// Panics if the compare stage has not run.
    pub fn counts(
        &self,
        sub: &SubArray,
        injectors: &mut [FaultInjector],
        ledger: &mut CycleLedger,
    ) -> Vec<u32> {
        self.counts_with(sub, injectors, SimdPolicy::Scalar, ledger)
    }

    /// [`LfmBatch::counts`] under a SIMD policy: `Auto` dispatches the
    /// masked prefix popcount to the hardware `popcnt` instruction when
    /// available. Counts, charges and fault draws are identical across
    /// policies; faults always corrupt a private copy of the shared
    /// group mask, so cached masks replay seeded faults bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if the compare stage has not run.
    pub fn counts_with(
        &self,
        sub: &SubArray,
        injectors: &mut [FaultInjector],
        policy: SimdPolicy,
        ledger: &mut CycleLedger,
    ) -> Vec<u32> {
        assert_eq!(
            self.group_of.len(),
            self.streams.len(),
            "compare stage has not run"
        );
        (0..self.streams.len())
            .map(|i| {
                LogicalOp::Popcount.charge(sub.model(), ledger);
                let shared = &self.masks[self.group_of[i]];
                match injectors.get_mut(self.streams[i]) {
                    Some(injector) if injector.is_active() => {
                        let mut mask = *shared;
                        injector.transient_row_mask(&mut mask);
                        injector.corrupt_match_mask(&mut mask, self.withins[i]);
                        mask.count_prefix_with(self.withins[i], policy)
                    }
                    _ => shared.count_prefix_with(self.withins[i], policy),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mram::array::ArrayModel;
    use mram::faults::{FaultCampaign, FaultModel};

    /// A sub-array with a few recognisable BWT rows loaded.
    fn loaded_subarray() -> (SubArray, CycleLedger) {
        let mut sub = SubArray::new(ArrayModel::default());
        let mut ledger = CycleLedger::new();
        for bucket in 0..4 {
            let codes: Vec<u8> = (0..128).map(|c| ((c + bucket) % 4) as u8).collect();
            sub.load_bwt_row(bucket, &codes, &mut ledger);
        }
        sub.load_cref_rows(&mut ledger);
        (sub, CycleLedger::new())
    }

    fn bases() -> [Base; 4] {
        [Base::A, Base::C, Base::G, Base::T]
    }

    #[test]
    fn grouped_compare_matches_single_calls() {
        let (sub, mut ledger) = loaded_subarray();
        let mut batch = LfmBatch::new();
        // 8 streams hammering 3 distinct (bucket, base) keys.
        let schedule = [
            (0, 1, Base::A, 17),
            (1, 1, Base::A, 90),
            (2, 2, Base::C, 5),
            (3, 1, Base::A, 128),
            (4, 2, Base::C, 64),
            (5, 3, Base::T, 33),
            (6, 1, Base::A, 1),
            (7, 3, Base::T, 127),
        ];
        for &(s, bucket, base, within) in &schedule {
            batch.push(s, bucket, base, within);
        }
        assert_eq!(batch.run_compare(&sub, None, &mut ledger), 3);
        assert_eq!(batch.group_count(), 3);
        let counts = batch.counts(&sub, &mut [], &mut ledger);
        let mut single_ledger = CycleLedger::new();
        for (i, &(s, bucket, base, within)) in schedule.iter().enumerate() {
            assert_eq!(batch.stream(i), s);
            let mask = sub.xnor_match(bucket, base, &mut single_ledger);
            assert_eq!(batch.mask(i), &mask, "request {i}");
            assert_eq!(
                batch.marker(i),
                sub.read_marker(bucket, base, &mut single_ledger)
            );
            assert_eq!(counts[i], mask.count_prefix(within), "request {i}");
        }
        // Leaders are exactly the first occurrences.
        let leaders: Vec<bool> = (0..schedule.len()).map(|i| batch.is_leader(i)).collect();
        assert_eq!(
            leaders,
            [true, false, true, false, false, true, false, false]
        );
        // The plane loads were charged once per group, not per request.
        let prims = ledger.primitives();
        assert_eq!(prims.count(LogicalOp::XnorMatch), 3);
        assert_eq!(prims.count(LogicalOp::MarkerRead), 3);
        assert_eq!(prims.count(LogicalOp::Popcount), 8);
    }

    #[test]
    fn sentinel_cleared_once_for_the_whole_group() {
        let (sub, mut ledger) = loaded_subarray();
        let mut batch = LfmBatch::new();
        batch.push(0, 1, Base::C, 128);
        batch.push(1, 1, Base::C, 128);
        batch.run_compare(&sub, Some((1, 40)), &mut ledger);
        assert!(!batch.mask(0).get(40), "sentinel column must read 0");
        let mut reference = sub.xnor_match(1, Base::C, &mut ledger);
        reference.set(40, false);
        assert_eq!(batch.mask(1), &reference);
        // A sentinel in a different bucket leaves the mask untouched.
        let mut other = LfmBatch::new();
        other.push(0, 2, Base::G, 128);
        other.run_compare(&sub, Some((1, 40)), &mut ledger);
        assert_eq!(other.mask(0), &sub.xnor_match(2, Base::G, &mut ledger));
    }

    #[test]
    fn per_stream_faults_follow_push_order() {
        // Request order (stream 0 low, stream 0 high interleaved with
        // stream 1) must consume each stream's injector exactly as the
        // equivalent single-read call sequence would.
        let campaign = FaultCampaign::seeded(77)
            .with_model(FaultModel::with_probabilities(0.05, 0.0))
            .with_transient_row_rate(0.2);
        let (sub, mut ledger) = loaded_subarray();
        let mut batch = LfmBatch::new();
        let schedule = [
            (0, 1, Base::A, 100),
            (1, 1, Base::A, 70),
            (0, 2, Base::A, 50),
        ];
        for &(s, bucket, base, within) in &schedule {
            batch.push(s, bucket, base, within);
        }
        batch.run_compare(&sub, None, &mut ledger);
        let mut injectors = [
            FaultInjector::new(campaign.for_read(0)),
            FaultInjector::new(campaign.for_read(1)),
        ];
        let batched = batch.counts(&sub, &mut injectors, &mut ledger);

        // Oracle: per-stream single-read replay in the same per-stream
        // order.
        let mut oracle = [
            FaultInjector::new(campaign.for_read(0)),
            FaultInjector::new(campaign.for_read(1)),
        ];
        let mut expected = Vec::new();
        for &(s, bucket, base, within) in &schedule {
            let mut mask = sub.xnor_match(bucket, base, &mut ledger);
            oracle[s].transient_row_mask(&mut mask);
            oracle[s].corrupt_match_mask(&mut mask, within);
            expected.push(mask.count_prefix(within));
        }
        assert_eq!(batched, expected);
        for s in 0..2 {
            assert_eq!(injectors[s].counters(), oracle[s].counters());
        }
    }

    #[test]
    fn cached_compare_is_cycle_and_bit_identical_to_uncached() {
        let (sub, _) = loaded_subarray();
        let schedule = [
            (0, 1, Base::A, 17),
            (1, 2, Base::C, 90),
            (2, 1, Base::A, 128),
            (3, 3, Base::T, 64),
        ];
        let sentinel = Some((1, 40));
        let mut cache = KernelCache::new();
        // Two passes through the same keys: the first misses and
        // installs, the second hits every group.
        for pass in 0..2 {
            let mut scalar_ledger = CycleLedger::new();
            let mut scalar_batch = LfmBatch::new();
            let mut cached_ledger = CycleLedger::new();
            let mut cached_batch = LfmBatch::new();
            for &(s, bucket, base, within) in &schedule {
                scalar_batch.push(s, bucket, base, within);
                cached_batch.push(s, bucket, base, within);
            }
            scalar_batch.run_compare(&sub, sentinel, &mut scalar_ledger);
            cached_batch.run_compare_with(
                &sub,
                sentinel,
                SimdPolicy::Auto,
                Some(&mut cache),
                0,
                &mut cached_ledger,
            );
            let scalar_counts = scalar_batch.counts(&sub, &mut [], &mut scalar_ledger);
            let cached_counts =
                cached_batch.counts_with(&sub, &mut [], SimdPolicy::Auto, &mut cached_ledger);
            for i in 0..schedule.len() {
                assert_eq!(scalar_batch.mask(i), cached_batch.mask(i), "pass {pass}");
                assert_eq!(scalar_batch.marker(i), cached_batch.marker(i));
            }
            assert_eq!(scalar_counts, cached_counts, "pass {pass}");
            // Every simulated charge — cycles, energy, primitives —
            // is byte-identical; only the host-side cache counters
            // differ between the ledgers.
            assert_eq!(
                scalar_ledger.total_busy_cycles(),
                cached_ledger.total_busy_cycles()
            );
            assert_eq!(scalar_ledger.energy_pj(), cached_ledger.energy_pj());
            assert_eq!(scalar_ledger.primitives(), cached_ledger.primitives());
            let cc = cached_ledger.kernel_cache_counters();
            if pass == 0 {
                assert_eq!((cc.hits, cc.misses), (0, 3), "3 distinct groups install");
            } else {
                assert_eq!((cc.hits, cc.misses), (3, 0), "second pass all hits");
            }
            assert_eq!(cc.evictions, 0);
            assert_eq!(scalar_ledger.kernel_cache_counters().lookups(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "already executed")]
    fn double_execution_panics() {
        let (sub, mut ledger) = loaded_subarray();
        let mut batch = LfmBatch::new();
        batch.push(0, 0, bases()[0], 10);
        batch.run_compare(&sub, None, &mut ledger);
        batch.run_compare(&sub, None, &mut ledger);
    }

    #[test]
    #[should_panic(expected = "compare stage has not run")]
    fn counts_before_compare_panics() {
        let (sub, mut ledger) = loaded_subarray();
        let mut batch = LfmBatch::new();
        batch.push(0, 0, bases()[0], 10);
        let _ = batch.counts(&sub, &mut [], &mut ledger);
    }
}
