//! Logical-operation cost table (DESIGN.md §6).
//!
//! The architecture executes *logical* operations (one `XNOR_Match`
//! comparison, one 32-bit marker read, one 32-bit `IM_ADD`, …); each
//! expands into single-cycle array primitives. The expansion factors
//! below encode the micro-architecture of §IV–V:
//!
//! | logical op        | cycles | expansion                                |
//! |-------------------|--------|------------------------------------------|
//! | `XNOR_Match`      | 2      | one `ComputeTriple` per bit-plane of the 2-bit base encoding |
//! | popcount          | 16     | the DPU counter digests the 128 match bits 8 per cycle |
//! | marker read       | 11     | a vertically stored 32-bit word read 3 bits per cycle through the three sub-SAs |
//! | `IM_ADD` (32-bit) | 45     | 32 `ComputeTriple` + 13 non-overlapped write-back cycles; sum and carry fire two write drivers per bit (the second is charged energy-only) |
//! | index update      | 2      | low/high DPU register writes             |
//! | SA entry read     | 11     | same vertical-read path as the marker    |
//! | row load/copy     | 1      | one `WriteRow`/`ReadRow` per word line   |
//!
//! One sequential `LFM` is therefore 2 + 16 + 11 + 45 + 2 = **76 cycles**;
//! the Fig. 7 pipeline overlaps the compare/memory stage (29 cycles) of one
//! read with the add stage (47 cycles) of another — see
//! [`pipeline`](crate::pipeline).

use mram::array::{ArrayModel, ArrayOp};

use crate::ledger::{CycleLedger, Resource};

/// A logical platform operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogicalOp {
    /// Parallel comparison of one query base against a 128-base BWT
    /// word-line segment (`XNOR_Match`).
    XnorMatch,
    /// DPU popcount of the 128-bit match vector.
    Popcount,
    /// Read of one 32-bit marker word from the vertical MT zone (`MEM`).
    MarkerRead,
    /// In-memory 32-bit addition (`IM_ADD`).
    ImAdd32,
    /// Update of the DPU's low/high interval registers.
    IndexUpdate,
    /// Read of one 32-bit suffix-array entry (`MEM` on the SA region).
    SaEntryRead,
    /// Loading one word line of data into a sub-array (mapping, method-II
    /// duplication, inter-sub-array transfer).
    RowWrite,
    /// Reading one word line out (result collection).
    RowRead,
}

impl LogicalOp {
    /// All logical operations, in the stable order the metrics emitters
    /// use.
    pub const ALL: [LogicalOp; 8] = [
        LogicalOp::XnorMatch,
        LogicalOp::Popcount,
        LogicalOp::MarkerRead,
        LogicalOp::ImAdd32,
        LogicalOp::IndexUpdate,
        LogicalOp::SaEntryRead,
        LogicalOp::RowWrite,
        LogicalOp::RowRead,
    ];

    /// Position in [`LogicalOp::ALL`] (the counter-table index).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            LogicalOp::XnorMatch => 0,
            LogicalOp::Popcount => 1,
            LogicalOp::MarkerRead => 2,
            LogicalOp::ImAdd32 => 3,
            LogicalOp::IndexUpdate => 4,
            LogicalOp::SaEntryRead => 5,
            LogicalOp::RowWrite => 6,
            LogicalOp::RowRead => 7,
        }
    }

    /// Stable snake-case label used by the metrics JSON emitters.
    pub fn name(self) -> &'static str {
        match self {
            LogicalOp::XnorMatch => "xnor_match",
            LogicalOp::Popcount => "popcount",
            LogicalOp::MarkerRead => "marker_read",
            LogicalOp::ImAdd32 => "im_add32",
            LogicalOp::IndexUpdate => "index_update",
            LogicalOp::SaEntryRead => "sa_entry_read",
            LogicalOp::RowWrite => "row_write",
            LogicalOp::RowRead => "row_read",
        }
    }

    /// Whether the op drives word lines in a sub-array (everything but
    /// the DPU-internal popcount and index-register updates). The
    /// per-primitive counters derive the sub-array activation total from
    /// this.
    pub fn activates_subarray(self) -> bool {
        !matches!(self, LogicalOp::Popcount | LogicalOp::IndexUpdate)
    }

    /// Cycles one logical op occupies on its resource.
    pub fn cycles(self) -> u64 {
        match self {
            LogicalOp::XnorMatch => 2,
            LogicalOp::Popcount => 16,
            LogicalOp::MarkerRead => 11,
            LogicalOp::ImAdd32 => 45,
            LogicalOp::IndexUpdate => 2,
            LogicalOp::SaEntryRead => 11,
            LogicalOp::RowWrite => 1,
            LogicalOp::RowRead => 1,
        }
    }

    /// The resource class the op occupies.
    pub fn resource(self) -> Resource {
        match self {
            LogicalOp::XnorMatch | LogicalOp::Popcount => Resource::Compare,
            LogicalOp::ImAdd32 => Resource::Adder,
            LogicalOp::MarkerRead | LogicalOp::SaEntryRead | LogicalOp::IndexUpdate => {
                Resource::Memory
            }
            LogicalOp::RowWrite | LogicalOp::RowRead => Resource::Transfer,
        }
    }

    /// Charges this logical op to a ledger (cycles + energy) and records
    /// it in the ledger's per-primitive counters.
    pub fn charge(self, model: &ArrayModel, ledger: &mut CycleLedger) {
        self.charge_many(model, ledger, 1);
    }

    /// Charges `n` repetitions of this logical op in one step.
    ///
    /// All integer accounting — busy cycles, `ArrayOp` counts, and the
    /// per-primitive counters — reconciles *exactly* with `n` sequential
    /// [`LogicalOp::charge`] calls; only the accumulated energy (an
    /// `f64`) may differ in the last bit of rounding. Hot loops that
    /// issue a known repeat count (SA-entry reads over an interval, the
    /// method-II operand-transfer burst) use this to avoid per-iteration
    /// charge overhead.
    pub fn charge_many(self, model: &ArrayModel, ledger: &mut CycleLedger, n: u64) {
        if n == 0 {
            return;
        }
        ledger.note_op_many(self, n);
        let resource = self.resource();
        match self {
            LogicalOp::XnorMatch => {
                ledger.charge(model, resource, ArrayOp::ComputeTriple, 2 * n);
            }
            LogicalOp::Popcount => {
                ledger.charge(model, resource, ArrayOp::DpuOp, 16 * n);
            }
            LogicalOp::MarkerRead | LogicalOp::SaEntryRead => {
                ledger.charge(model, resource, ArrayOp::ReadRow, 11 * n);
            }
            LogicalOp::ImAdd32 => {
                // Per add: 32 compute cycles + 13 write-stall cycles
                // occupy the adder; sum and carry fire two write drivers
                // per bit (64 firings), charged as energy.
                ledger.charge(model, resource, ArrayOp::ComputeTriple, 32 * n);
                ledger.charge(model, resource, ArrayOp::DpuOp, 13 * n);
                ledger.charge_energy_only(model, ArrayOp::WriteRow, 64 * n);
            }
            LogicalOp::IndexUpdate => {
                ledger.charge(model, resource, ArrayOp::DpuOp, 2 * n);
            }
            LogicalOp::RowWrite => {
                ledger.charge(model, resource, ArrayOp::WriteRow, n);
            }
            LogicalOp::RowRead => {
                ledger.charge(model, resource, ArrayOp::ReadRow, n);
            }
        }
    }
}

/// Cycles of one full `LFM` invocation executed sequentially
/// (`XNOR_Match` + popcount + marker read + `IM_ADD` + index update).
pub fn lfm_cycles() -> u64 {
    LogicalOp::XnorMatch.cycles()
        + LogicalOp::Popcount.cycles()
        + LogicalOp::MarkerRead.cycles()
        + LogicalOp::ImAdd32.cycles()
        + LogicalOp::IndexUpdate.cycles()
}

/// Cycles of the compare/memory pipeline stage (`XNOR_Match` + popcount +
/// marker read).
pub fn lfm_stage_a_cycles() -> u64 {
    LogicalOp::XnorMatch.cycles() + LogicalOp::Popcount.cycles() + LogicalOp::MarkerRead.cycles()
}

/// Cycles of the add pipeline stage (`IM_ADD` + index update).
pub fn lfm_stage_b_cycles() -> u64 {
    LogicalOp::ImAdd32.cycles() + LogicalOp::IndexUpdate.cycles()
}

/// Charges one full `LFM` to a ledger.
pub fn charge_lfm(model: &ArrayModel, ledger: &mut CycleLedger) {
    LogicalOp::XnorMatch.charge(model, ledger);
    LogicalOp::Popcount.charge(model, ledger);
    LogicalOp::MarkerRead.charge(model, ledger);
    LogicalOp::ImAdd32.charge(model, ledger);
    LogicalOp::IndexUpdate.charge(model, ledger);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfm_cycle_budget() {
        // 2 + 16 + 11 + 45 + 2 = 76 cycles per sequential LFM.
        assert_eq!(lfm_cycles(), 76);
        assert_eq!(lfm_stage_a_cycles(), 29);
        assert_eq!(lfm_stage_b_cycles(), 47);
        assert_eq!(lfm_stage_a_cycles() + lfm_stage_b_cycles(), lfm_cycles());
    }

    #[test]
    fn memory_share_stays_below_mbr_claim() {
        // Marker read + index update are the per-LFM memory cycles;
        // Fig. 10b claims PIM-Aligner spends < ~18 % of time on memory
        // access.
        let memory = LogicalOp::MarkerRead.cycles() + LogicalOp::IndexUpdate.cycles();
        let ratio = memory as f64 / lfm_cycles() as f64;
        assert!(ratio < 0.18, "memory share {ratio:.3}");
    }

    #[test]
    fn resources_partition_the_ops() {
        assert_eq!(LogicalOp::XnorMatch.resource(), Resource::Compare);
        assert_eq!(LogicalOp::Popcount.resource(), Resource::Compare);
        assert_eq!(LogicalOp::ImAdd32.resource(), Resource::Adder);
        assert_eq!(LogicalOp::MarkerRead.resource(), Resource::Memory);
        assert_eq!(LogicalOp::RowWrite.resource(), Resource::Transfer);
    }

    #[test]
    fn charge_lfm_attributes_cycles_per_resource() {
        let model = ArrayModel::default();
        let mut l = CycleLedger::new();
        charge_lfm(&model, &mut l);
        assert_eq!(l.busy_cycles(Resource::Compare), 18); // 2 + 16
        assert_eq!(l.busy_cycles(Resource::Adder), 45);
        assert_eq!(l.busy_cycles(Resource::Memory), 13); // 11 + 2
        assert_eq!(l.busy_cycles(Resource::Transfer), 0);
        assert_eq!(l.total_busy_cycles(), lfm_cycles());
    }

    #[test]
    fn charge_many_reconciles_exactly_with_sequential_charges() {
        let model = ArrayModel::default();
        for op in LogicalOp::ALL {
            let mut batched = CycleLedger::new();
            op.charge_many(&model, &mut batched, 7);
            let mut sequential = CycleLedger::new();
            for _ in 0..7 {
                op.charge(&model, &mut sequential);
            }
            for r in Resource::ALL {
                assert_eq!(
                    batched.busy_cycles(r),
                    sequential.busy_cycles(r),
                    "{op:?} busy cycles on {r:?}"
                );
            }
            for aop in [
                ArrayOp::ReadRow,
                ArrayOp::WriteRow,
                ArrayOp::ComputeTriple,
                ArrayOp::DpuOp,
            ] {
                assert_eq!(
                    batched.op_count(aop),
                    sequential.op_count(aop),
                    "{op:?} count of {aop:?}"
                );
            }
            assert_eq!(
                batched.primitives(),
                sequential.primitives(),
                "{op:?} per-primitive counters"
            );
            assert!(
                (batched.energy_pj() - sequential.energy_pj()).abs() < 1e-6,
                "{op:?} energy"
            );
        }
    }

    #[test]
    fn charge_many_zero_is_a_no_op() {
        let model = ArrayModel::default();
        let mut l = CycleLedger::new();
        LogicalOp::RowWrite.charge_many(&model, &mut l, 0);
        assert_eq!(l.total_busy_cycles(), 0);
        assert_eq!(l.primitives().total_count(), 0);
        assert_eq!(l.energy_pj(), 0.0);
    }

    #[test]
    fn im_add_charges_double_write_energy() {
        let model = ArrayModel::default();
        let mut l = CycleLedger::new();
        LogicalOp::ImAdd32.charge(&model, &mut l);
        // 64 write-driver firings (sum + carry per bit), energy-only.
        assert_eq!(l.op_count(mram::array::ArrayOp::WriteRow), 64);
        assert_eq!(l.busy_cycles(Resource::Adder), 45);
    }
}
