//! Cycle and energy accounting.

use mram::array::{ArrayModel, ArrayOp};

use crate::costs::LogicalOp;
use crate::metrics::PrimCounters;
use crate::pipeline::PipelineCounters;

/// A hardware resource class, used to attribute busy cycles for the
/// utilisation figures (Fig. 10b/10c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The comparison path: `XNOR_Match` sensing plus DPU popcount.
    Compare,
    /// The in-memory adder (`IM_ADD` compute + write-back).
    Adder,
    /// Intra-array memory access: marker/SA reads, index updates, data
    /// staging.
    Memory,
    /// Data transfer in/out of the sub-array group (read loading, result
    /// write-back, method-II copies).
    Transfer,
}

impl Resource {
    /// All resource classes.
    pub const ALL: [Resource; 4] = [
        Resource::Compare,
        Resource::Adder,
        Resource::Memory,
        Resource::Transfer,
    ];

    fn index(self) -> usize {
        match self {
            Resource::Compare => 0,
            Resource::Adder => 1,
            Resource::Memory => 2,
            Resource::Transfer => 3,
        }
    }

    /// Stable lower-case label used by the metrics JSON emitters.
    pub fn name(self) -> &'static str {
        match self {
            Resource::Compare => "compare",
            Resource::Adder => "adder",
            Resource::Memory => "memory",
            Resource::Transfer => "transfer",
        }
    }
}

/// Host-side hit/miss/eviction totals for the rank-checkpoint cache
/// ([`crate::KernelCache`]). These count *host work avoided*, never
/// simulated cycles: a cache hit still charges the platform exactly the
/// ops a recompute would, so these counters live beside — not inside —
/// the cycle/energy accounting (DESIGN.md §16).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCacheCounters {
    /// Lookups answered from a live entry (compare + marker gather
    /// skipped on the host).
    pub hits: u64,
    /// Lookups that recomputed and installed an entry.
    pub misses: u64,
    /// Installs that displaced a live entry of a different sub-array.
    pub evictions: u64,
}

impl KernelCacheCounters {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache; `0.0` when the cache
    /// never ran.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Adds another set of totals into this one.
    pub fn merge(&mut self, other: &KernelCacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// Accumulates the cycles and dynamic energy of every primitive issued to
/// the platform, attributed to resource classes.
///
/// Busy cycles are accounted per resource; the *makespan* (wall-clock
/// cycles) is tracked separately by the caller because overlapped
/// execution (the Fig. 7 pipeline) makes it less than the busy-cycle sum.
///
/// # Examples
///
/// ```
/// use mram::array::{ArrayModel, ArrayOp};
/// use pimsim::{CycleLedger, Resource};
///
/// let model = ArrayModel::default();
/// let mut ledger = CycleLedger::new();
/// ledger.charge(&model, Resource::Compare, ArrayOp::ComputeTriple, 2);
/// assert_eq!(ledger.busy_cycles(Resource::Compare), 2);
/// assert!(ledger.energy_pj() > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CycleLedger {
    busy: [u64; 4],
    energy_pj: f64,
    op_counts: [u64; 4],
    prims: PrimCounters,
    /// Sub-array activation heatmap: `zones[z]` counts activating
    /// operations attributed to zone `z` by the charge sites that know
    /// their target (primary sub-arrays first, then method-II mirrors).
    /// Empty until the first zone note; grows on demand.
    zones: Vec<u64>,
    /// Stage-queue scheduling totals recorded by the batched kernel
    /// path ([`crate::PipelineSim`]); all-zero on the single-read path.
    pipeline: PipelineCounters,
    /// Rank-checkpoint cache totals noted by the kernel call sites;
    /// all-zero when the cache is disabled (`--kernel-simd=scalar`).
    kernel_cache: KernelCacheCounters,
}

/// Ledger equality is *simulated-state* equality: cycles, energy,
/// primitive counts, zone heatmap, pipeline totals. The kernel-cache
/// counters are deliberately excluded — they are host-side telemetry
/// (a hit charges the identical ops as the recompute it replaces), and
/// the hit/miss split depends on how the parallel engine partitions
/// reads across per-worker caches, so it is not thread-invariant.
/// Compare [`CycleLedger::kernel_cache_counters`] explicitly where
/// cache traffic itself is under test.
impl PartialEq for CycleLedger {
    fn eq(&self, other: &CycleLedger) -> bool {
        self.busy == other.busy
            && self.energy_pj == other.energy_pj
            && self.op_counts == other.op_counts
            && self.prims == other.prims
            && self.zones == other.zones
            && self.pipeline == other.pipeline
    }
}

impl CycleLedger {
    /// An empty ledger.
    pub fn new() -> CycleLedger {
        CycleLedger::default()
    }

    /// Charges `count` repetitions of `op` to `resource`, accruing both
    /// cycles and energy from the array model.
    pub fn charge(&mut self, model: &ArrayModel, resource: Resource, op: ArrayOp, count: u64) {
        self.busy[resource.index()] += model.cycles(op) * count;
        self.energy_pj += model.energy_pj(op) * count as f64;
        self.op_counts[op_index(op)] += count;
    }

    /// Charges energy only (e.g. the second write driver firing in the
    /// same cycle as the first).
    pub fn charge_energy_only(&mut self, model: &ArrayModel, op: ArrayOp, count: u64) {
        self.energy_pj += model.energy_pj(op) * count as f64;
        self.op_counts[op_index(op)] += count;
    }

    /// Records one issued logical primitive in the hierarchical
    /// per-primitive counters. Called by [`LogicalOp::charge`]; the
    /// cycle/energy accounting itself still flows through
    /// [`CycleLedger::charge`].
    #[inline]
    pub fn note_op(&mut self, op: LogicalOp) {
        self.prims.note(op);
    }

    /// Records `n` issued logical primitives in one step (the batched
    /// form behind [`LogicalOp::charge_many`]). Integer-exact: equal to
    /// `n` [`CycleLedger::note_op`] calls.
    #[inline]
    pub fn note_op_many(&mut self, op: LogicalOp, n: u64) {
        self.prims.note_many(op, n);
    }

    /// Attributes `n` sub-array activations to `zone` in the activation
    /// heatmap. Called by the charge sites that know which physical
    /// sub-array (or mirror) an operation lands on; the heatmap therefore
    /// covers the zone-attributable subset of
    /// [`PrimCounters::subarray_activations`], never more.
    #[inline]
    pub fn note_zone_many(&mut self, zone: usize, n: u64) {
        if self.zones.len() <= zone {
            self.zones.resize(zone + 1, 0);
        }
        self.zones[zone] += n;
    }

    /// The per-zone activation heatmap (empty when no charge site noted a
    /// zone).
    pub fn zone_activations(&self) -> &[u64] {
        &self.zones
    }

    /// Folds one batch's stage-queue scheduling totals in (called once
    /// per `lfm_batch` invocation with the batch's
    /// [`crate::PipelineSim`] counters).
    #[inline]
    pub fn record_pipeline(&mut self, counters: &PipelineCounters) {
        self.pipeline.merge(counters);
    }

    /// Accumulated stage-queue scheduling totals (all-zero unless the
    /// batched kernel path ran).
    pub fn pipeline_counters(&self) -> PipelineCounters {
        self.pipeline
    }

    /// Notes one rank-checkpoint cache hit. Called by the kernel call
    /// site *alongside* the usual logical-op charges — a hit changes
    /// host work only, never what the platform is billed.
    #[inline]
    pub fn note_kernel_cache_hit(&mut self) {
        self.kernel_cache.hits += 1;
    }

    /// Notes one rank-checkpoint cache miss (entry recomputed and
    /// installed).
    #[inline]
    pub fn note_kernel_cache_miss(&mut self) {
        self.kernel_cache.misses += 1;
    }

    /// Notes one eviction (a miss whose install displaced a live entry
    /// of a different sub-array).
    #[inline]
    pub fn note_kernel_cache_eviction(&mut self) {
        self.kernel_cache.evictions += 1;
    }

    /// Accumulated rank-checkpoint cache totals (all-zero when the
    /// cache is disabled).
    pub fn kernel_cache_counters(&self) -> KernelCacheCounters {
        self.kernel_cache
    }

    /// The hierarchical per-primitive counters (counts and busy cycles
    /// per [`LogicalOp`]). For any ledger charged exclusively through
    /// logical operations — the entire production path — the counters'
    /// cycle total reconciles with [`CycleLedger::total_busy_cycles`].
    pub fn primitives(&self) -> &PrimCounters {
        &self.prims
    }

    /// Busy cycles attributed to one resource.
    pub fn busy_cycles(&self, resource: Resource) -> u64 {
        self.busy[resource.index()]
    }

    /// Sum of busy cycles over all resources (the sequential-execution
    /// makespan).
    pub fn total_busy_cycles(&self) -> u64 {
        self.busy.iter().sum()
    }

    /// Total dynamic energy in pJ.
    pub fn energy_pj(&self) -> f64 {
        self.energy_pj
    }

    /// Number of primitives of `op` issued.
    pub fn op_count(&self, op: ArrayOp) -> u64 {
        self.op_counts[op_index(op)]
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &CycleLedger) {
        for i in 0..4 {
            self.busy[i] += other.busy[i];
            self.op_counts[i] += other.op_counts[i];
        }
        self.energy_pj += other.energy_pj;
        self.prims.merge(&other.prims);
        self.pipeline.merge(&other.pipeline);
        self.kernel_cache.merge(&other.kernel_cache);
        if self.zones.len() < other.zones.len() {
            self.zones.resize(other.zones.len(), 0);
        }
        for (z, n) in other.zones.iter().enumerate() {
            self.zones[z] += n;
        }
    }

    /// Per-primitive energy breakdown under `model`, in pJ, in
    /// [`ArrayOp::ALL`] order. Sums to [`CycleLedger::energy_pj`] when
    /// every charge used the same model.
    pub fn energy_breakdown_pj(&self, model: &ArrayModel) -> [(ArrayOp, f64); 4] {
        [
            ArrayOp::ReadRow,
            ArrayOp::WriteRow,
            ArrayOp::ComputeTriple,
            ArrayOp::DpuOp,
        ]
        .map(|op| (op, model.energy_pj(op) * self.op_count(op) as f64))
    }
}

fn op_index(op: ArrayOp) -> usize {
    match op {
        ArrayOp::ReadRow => 0,
        ArrayOp::WriteRow => 1,
        ArrayOp::ComputeTriple => 2,
        ArrayOp::DpuOp => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let model = ArrayModel::default();
        let mut l = CycleLedger::new();
        l.charge(&model, Resource::Compare, ArrayOp::ComputeTriple, 2);
        l.charge(&model, Resource::Memory, ArrayOp::ReadRow, 16);
        l.charge(&model, Resource::Adder, ArrayOp::WriteRow, 32);
        assert_eq!(l.busy_cycles(Resource::Compare), 2);
        assert_eq!(l.busy_cycles(Resource::Memory), 16);
        assert_eq!(l.busy_cycles(Resource::Adder), 32);
        assert_eq!(l.total_busy_cycles(), 50);
        let expected = 2.0 * model.energy_pj(ArrayOp::ComputeTriple)
            + 16.0 * model.energy_pj(ArrayOp::ReadRow)
            + 32.0 * model.energy_pj(ArrayOp::WriteRow);
        assert!((l.energy_pj() - expected).abs() < 1e-9);
    }

    #[test]
    fn energy_only_charge_adds_no_cycles() {
        let model = ArrayModel::default();
        let mut l = CycleLedger::new();
        l.charge_energy_only(&model, ArrayOp::WriteRow, 4);
        assert_eq!(l.total_busy_cycles(), 0);
        assert!(l.energy_pj() > 0.0);
        assert_eq!(l.op_count(ArrayOp::WriteRow), 4);
    }

    #[test]
    fn merge_sums_everything() {
        let model = ArrayModel::default();
        let mut a = CycleLedger::new();
        a.charge(&model, Resource::Compare, ArrayOp::ComputeTriple, 3);
        let mut b = CycleLedger::new();
        b.charge(&model, Resource::Compare, ArrayOp::ComputeTriple, 5);
        b.charge(&model, Resource::Transfer, ArrayOp::WriteRow, 1);
        a.merge(&b);
        assert_eq!(a.busy_cycles(Resource::Compare), 8);
        assert_eq!(a.busy_cycles(Resource::Transfer), 1);
        assert_eq!(a.op_count(ArrayOp::ComputeTriple), 8);
    }

    #[test]
    fn energy_breakdown_sums_to_total() {
        let model = ArrayModel::default();
        let mut l = CycleLedger::new();
        l.charge(&model, Resource::Compare, ArrayOp::ComputeTriple, 10);
        l.charge(&model, Resource::Memory, ArrayOp::ReadRow, 5);
        l.charge_energy_only(&model, ArrayOp::WriteRow, 3);
        let breakdown = l.energy_breakdown_pj(&model);
        let sum: f64 = breakdown.iter().map(|(_, e)| e).sum();
        assert!((sum - l.energy_pj()).abs() < 1e-9);
        let write = breakdown
            .iter()
            .find(|(op, _)| *op == ArrayOp::WriteRow)
            .unwrap()
            .1;
        assert!((write - 3.0 * model.energy_pj(ArrayOp::WriteRow)).abs() < 1e-9);
    }

    #[test]
    fn zone_notes_grow_and_merge() {
        let mut a = CycleLedger::new();
        assert!(a.zone_activations().is_empty());
        a.note_zone_many(2, 3);
        a.note_zone_many(0, 1);
        assert_eq!(a.zone_activations(), &[1, 0, 3]);
        let mut b = CycleLedger::new();
        b.note_zone_many(4, 7);
        a.merge(&b);
        assert_eq!(a.zone_activations(), &[1, 0, 3, 0, 7]);
        let mut c = CycleLedger::new();
        c.merge(&a);
        assert_eq!(c.zone_activations(), a.zone_activations());
    }

    #[test]
    fn pipeline_counters_record_and_merge() {
        let mut a = CycleLedger::new();
        assert_eq!(a.pipeline_counters(), PipelineCounters::default());
        a.record_pipeline(&PipelineCounters {
            issued: 4,
            makespan_cycles: 245,
            sequential_cycles: 304,
        });
        let mut b = CycleLedger::new();
        b.record_pipeline(&PipelineCounters {
            issued: 2,
            makespan_cycles: 137,
            sequential_cycles: 152,
        });
        a.merge(&b);
        let total = a.pipeline_counters();
        assert_eq!(total.issued, 6);
        assert_eq!(total.makespan_cycles, 245 + 137);
        assert_eq!(total.sequential_cycles, 304 + 152);
        assert_eq!(total.overlap_saved_cycles(), 456 - 382);
    }

    #[test]
    fn kernel_cache_counters_record_and_merge() {
        let mut a = CycleLedger::new();
        assert_eq!(a.kernel_cache_counters(), KernelCacheCounters::default());
        assert_eq!(a.kernel_cache_counters().hit_rate(), 0.0);
        a.note_kernel_cache_miss();
        a.note_kernel_cache_hit();
        a.note_kernel_cache_hit();
        a.note_kernel_cache_eviction();
        let mut b = CycleLedger::new();
        b.note_kernel_cache_hit();
        b.note_kernel_cache_miss();
        a.merge(&b);
        let total = a.kernel_cache_counters();
        assert_eq!(total.hits, 3);
        assert_eq!(total.misses, 2);
        assert_eq!(total.evictions, 1);
        assert_eq!(total.lookups(), 5);
        assert!((total.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn op_counts_tracked_per_kind() {
        let model = ArrayModel::default();
        let mut l = CycleLedger::new();
        l.charge(&model, Resource::Memory, ArrayOp::ReadRow, 7);
        l.charge(&model, Resource::Compare, ArrayOp::DpuOp, 9);
        assert_eq!(l.op_count(ArrayOp::ReadRow), 7);
        assert_eq!(l.op_count(ArrayOp::DpuOp), 9);
        assert_eq!(l.op_count(ArrayOp::WriteRow), 0);
    }
}
