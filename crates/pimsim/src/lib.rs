//! Micro-architecture simulator for the PIM-Aligner platform.
//!
//! This crate models the computational memory of paper §IV–V at the level
//! the evaluation needs: *functionally* (bit-exact contents of a 512×256
//! SOT-MRAM sub-array and the results of its bulk bit-wise operations) and
//! *behaviourally* (a cycle-and-energy ledger priced by the NVSim-lite
//! model from the `mram` crate — the role the paper's MATLAB simulator
//! plays).
//!
//! Components:
//!
//! * [`SubArray`] — the computational sub-array with the Fig. 6a zone
//!   layout (BWT rows, `CRef` rows, vertical marker table, reserved
//!   scratch) and the three bulk primitives `MEM`, `XNOR_Match`,
//!   `IM_ADD`;
//! * [`Dpu`] — the digital processing unit: popcount of match vectors,
//!   interval registers, backtracking state (paper: "DPU's registers
//!   store the state (i.e. symbol, low and high)");
//! * [`CycleLedger`] — per-resource busy-cycle and energy accounting from
//!   which throughput, power, MBR and RUR are derived;
//! * [`FaultInjector`] — seeded fault-campaign sampling (sense misreads,
//!   stuck-at cells, transient row bursts, `IM_ADD` carry faults) with
//!   per-class injection counters;
//! * [`metrics`] — hierarchical per-primitive counters recorded by every
//!   logical-op charge, plus the ring-buffered [`SpanTracer`]
//!   (zero-cost when disabled) behind `PerfReport::breakdown`;
//! * [`host`] — wall-clock telemetry ([`HostHistogram`], [`HostSpanLog`],
//!   [`WorkerStats`], Chrome-trace export): host-side time, kept strictly
//!   apart from the simulated-cycle accounting above;
//! * [`pipeline`] — the Fig. 7 pipeline model with parallelism degree
//!   `Pd`;
//! * [`costs`] — the logical-operation cost table (cycles per
//!   `XNOR_Match`, marker read, 32-bit `IM_ADD`, …) documented in
//!   DESIGN.md §6;
//! * [`simd`] — runtime-dispatched SIMD lanes (AVX2/SSE2/portable) for
//!   the packed plane ops plus the rank-checkpoint [`KernelCache`]:
//!   host-wall-clock accelerations that leave every simulated charge
//!   byte-identical (DESIGN.md §16).
//!
//! Functional results are validated in two directions: against the
//! `mram` sense-amplifier model (every bulk op agrees with what the
//! analog circuit would produce) and against the `fmindex` software
//! oracle (every `LFM` executed on the platform returns the same bound).

pub mod batch;
pub mod costs;
pub mod host;
pub mod metrics;
pub mod pipeline;
pub mod reference;
pub mod simd;

mod dpu;
mod faults;
mod ledger;
mod subarray;

pub use batch::LfmBatch;
pub use dpu::{BacktrackState, Dpu};
pub use faults::{FaultCounters, FaultInjector};
pub use host::{chrome_trace_json, HostEpoch, HostHistogram, HostSpan, HostSpanLog, WorkerStats};
pub use ledger::{CycleLedger, KernelCacheCounters, Resource};
pub use metrics::{PrimCounters, Span, SpanTracer};
pub use pipeline::{PipelineCounters, PipelineParams, PipelineSim};
pub use simd::{dispatched_path, KernelCache, SimdPolicy};
pub use subarray::{validate_functions_against_circuit, MatchMask, SubArray, SubArrayLayout};
