//! The Digital Processing Unit.
//!
//! Paper §IV-A: "A Digital Processing Unit (DPU) is associated with the
//! PIM-Aligner to control the entire process … For each allowed mismatch,
//! DPU's registers store the state (i.e. symbol, low and high)". The DPU
//! owns the embedded match counter ("DPU's embedded counter counts up to
//! eventually compute count_match") and the backtracking register file
//! used by the inexact algorithm.

use mram::array::ArrayModel;

use crate::costs::LogicalOp;
use crate::ledger::CycleLedger;
use crate::metrics::SpanTracer;

/// One saved backtracking state (paper: "symbol, low and high", plus the
/// remaining difference budget needed to resume Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BacktrackState {
    /// Read position the state resumes at.
    pub position: u32,
    /// Saved lower bound.
    pub low: u32,
    /// Saved upper bound.
    pub high: u32,
    /// Remaining difference budget.
    pub budget: i8,
    /// The branch symbol rank (0..=3) being explored.
    pub symbol: u8,
}

/// The per-pipeline DPU: interval registers, match counter, and the
/// backtracking register file.
///
/// # Examples
///
/// ```
/// use pimsim::{CycleLedger, Dpu};
///
/// let mut dpu = Dpu::new(mram::array::ArrayModel::default());
/// let mut ledger = CycleLedger::new();
/// let matches = vec![true, false, true, true, false];
/// assert_eq!(dpu.count_matches(&matches, 4, &mut ledger), 3);
/// assert_eq!(dpu.count_matches(&matches, 2, &mut ledger), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Dpu {
    model: ArrayModel,
    low: u32,
    high: u32,
    stack: Vec<BacktrackState>,
    /// The session's span tracer. The DPU is the controller that issues
    /// every platform operation, so the trace buffer lives in it —
    /// wherever the `LFM` loop runs, the tracer is already threaded in.
    /// Disabled (zero-cost) by default.
    tracer: SpanTracer,
}

impl Dpu {
    /// Creates a DPU with cleared registers and tracing disabled.
    pub fn new(model: ArrayModel) -> Dpu {
        Dpu {
            model,
            low: 0,
            high: 0,
            stack: Vec::new(),
            tracer: SpanTracer::disabled(),
        }
    }

    /// The span tracer (read side: harvest recorded spans).
    pub fn tracer(&self) -> &SpanTracer {
        &self.tracer
    }

    /// The span tracer (write side: record spans, or replace it via
    /// assignment to enable tracing).
    pub fn tracer_mut(&mut self) -> &mut SpanTracer {
        &mut self.tracer
    }

    /// Initialises the interval registers to `[0, n)` (Algorithm 1:
    /// "index-low and index-high boundaries are initialized to … 0 and
    /// N").
    pub fn init_interval(&mut self, n: u32, ledger: &mut CycleLedger) {
        self.low = 0;
        self.high = n;
        LogicalOp::IndexUpdate.charge(&self.model, ledger);
    }

    /// Current `low` register.
    pub fn low(&self) -> u32 {
        self.low
    }

    /// Current `high` register.
    pub fn high(&self) -> u32 {
        self.high
    }

    /// Writes both interval registers.
    pub fn set_interval(&mut self, low: u32, high: u32, ledger: &mut CycleLedger) {
        self.low = low;
        self.high = high;
        LogicalOp::IndexUpdate.charge(&self.model, ledger);
    }

    /// Whether the search has failed (`low ≥ high`).
    pub fn interval_empty(&self) -> bool {
        self.low >= self.high
    }

    /// Counts the `true` entries among the first `limit` match bits —
    /// the `count_match` computation. Charged as one popcount.
    ///
    /// # Panics
    ///
    /// Panics if `limit > matches.len()`.
    pub fn count_matches(
        &mut self,
        matches: &[bool],
        limit: usize,
        ledger: &mut CycleLedger,
    ) -> u32 {
        assert!(limit <= matches.len(), "popcount limit out of range");
        LogicalOp::Popcount.charge(&self.model, ledger);
        matches[..limit].iter().filter(|&&m| m).count() as u32
    }

    /// Packed form of [`Dpu::count_matches`]: counts the set bits among
    /// the first `limit` positions of a match mask via masked popcount.
    /// Charged as one popcount, identically to the boolean form.
    ///
    /// # Panics
    ///
    /// Panics if `limit > 128`.
    pub fn count_mask_matches(
        &mut self,
        matches: &crate::MatchMask,
        limit: usize,
        ledger: &mut CycleLedger,
    ) -> u32 {
        LogicalOp::Popcount.charge(&self.model, ledger);
        matches.count_prefix(limit)
    }

    /// Pushes a backtracking state (one register-file write).
    pub fn push_state(&mut self, state: BacktrackState, ledger: &mut CycleLedger) {
        LogicalOp::IndexUpdate.charge(&self.model, ledger);
        self.stack.push(state);
    }

    /// Pops the most recent backtracking state, if any.
    pub fn pop_state(&mut self, ledger: &mut CycleLedger) -> Option<BacktrackState> {
        if self.stack.is_empty() {
            return None;
        }
        LogicalOp::IndexUpdate.charge(&self.model, ledger);
        self.stack.pop()
    }

    /// Number of saved backtracking states.
    pub fn stack_depth(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> (Dpu, CycleLedger) {
        (Dpu::new(ArrayModel::default()), CycleLedger::new())
    }

    #[test]
    fn interval_lifecycle() {
        let (mut dpu, mut ledger) = fresh();
        dpu.init_interval(100, &mut ledger);
        assert_eq!((dpu.low(), dpu.high()), (0, 100));
        assert!(!dpu.interval_empty());
        dpu.set_interval(40, 40, &mut ledger);
        assert!(dpu.interval_empty());
    }

    #[test]
    fn count_matches_respects_limit() {
        let (mut dpu, mut ledger) = fresh();
        let m = vec![true, true, false, true, true];
        assert_eq!(dpu.count_matches(&m, 5, &mut ledger), 4);
        assert_eq!(dpu.count_matches(&m, 3, &mut ledger), 2);
        assert_eq!(dpu.count_matches(&m, 0, &mut ledger), 0);
    }

    #[test]
    fn mask_count_agrees_with_boolean_count() {
        let (mut dpu, mut ledger) = fresh();
        let bools: Vec<bool> = (0..128).map(|i| i % 3 == 0 || i > 100).collect();
        let mask = crate::MatchMask::from_bools(&bools);
        for limit in [0usize, 1, 17, 64, 65, 101, 128] {
            assert_eq!(
                dpu.count_mask_matches(&mask, limit, &mut ledger),
                dpu.count_matches(&bools, limit, &mut ledger),
                "limit {limit}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "limit out of range")]
    fn oversized_limit_panics() {
        let (mut dpu, mut ledger) = fresh();
        let _ = dpu.count_matches(&[true], 2, &mut ledger);
    }

    #[test]
    fn backtracking_stack_is_lifo() {
        let (mut dpu, mut ledger) = fresh();
        let s1 = BacktrackState {
            position: 10,
            low: 1,
            high: 5,
            budget: 2,
            symbol: 0,
        };
        let s2 = BacktrackState {
            position: 9,
            low: 2,
            high: 3,
            budget: 1,
            symbol: 3,
        };
        dpu.push_state(s1, &mut ledger);
        dpu.push_state(s2, &mut ledger);
        assert_eq!(dpu.stack_depth(), 2);
        assert_eq!(dpu.pop_state(&mut ledger), Some(s2));
        assert_eq!(dpu.pop_state(&mut ledger), Some(s1));
        assert_eq!(dpu.pop_state(&mut ledger), None);
    }

    #[test]
    fn operations_charge_cycles() {
        let (mut dpu, mut ledger) = fresh();
        dpu.init_interval(10, &mut ledger);
        let _ = dpu.count_matches(&[true, false], 2, &mut ledger);
        assert!(ledger.total_busy_cycles() > 0);
    }
}
