//! The computational sub-array: functional bit storage plus the three
//! bulk primitives, laid out per Fig. 6a.
//!
//! Storage is bit-packed (DESIGN.md §11): every 256-column row is four
//! `u64` words holding the two bit-planes of the 2-bit base encoding, so
//! the `XNOR_Match` primitive is evaluated word-parallel — a handful of
//! XOR/AND/NOT word operations instead of a 128-iteration boolean scan —
//! and returns a stack-allocated [`MatchMask`]. The cycle/energy charges
//! are unchanged: the ledger prices *logical operations*, which are
//! representation-independent.

use std::ops::Range;

use mram::array::{ArrayModel, SubArrayGeometry};
use mram::sense::{SenseAmp, SenseMode};

use crate::costs::LogicalOp;
use crate::ledger::CycleLedger;
use crate::simd::{self, SimdPolicy};

/// The Fig. 6a zone partitioning of a 512×256 sub-array:
///
/// * 256 rows of BWT, 128 bases (2 bits each) per row — one Occ bucket
///   per row;
/// * 4 `CRef` rows, one per nucleotide, holding the base's 2-bit code
///   repeated across the word line;
/// * 128 rows of vertically stored markers: each *column* holds the four
///   32-bit markers (A, C, G, T) of one bucket;
/// * 124 reserved rows of `IM_ADD` scratch (operands, sum, carry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubArrayLayout {
    /// Rows holding BWT buckets.
    pub bwt_rows: Range<usize>,
    /// The four computational-reference rows.
    pub cref_rows: Range<usize>,
    /// Rows of the vertical marker table.
    pub mt_rows: Range<usize>,
    /// Scratch rows for in-memory addition.
    pub reserved_rows: Range<usize>,
}

impl SubArrayLayout {
    /// Bases per BWT row (= the Occ bucket width `d`).
    pub const BASES_PER_ROW: usize = 128;

    /// The paper's partitioning of the 512-row sub-array.
    pub fn paper() -> SubArrayLayout {
        SubArrayLayout {
            bwt_rows: 0..256,
            cref_rows: 256..260,
            mt_rows: 260..388,
            reserved_rows: 388..512,
        }
    }

    /// Number of BWT buckets this sub-array holds.
    pub fn buckets(&self) -> usize {
        self.bwt_rows.len()
    }

    /// Total BWT bases this sub-array covers.
    pub fn bwt_capacity_bases(&self) -> usize {
        self.buckets() * Self::BASES_PER_ROW
    }

    /// Validates the layout against a geometry.
    ///
    /// # Panics
    ///
    /// Panics if zones overlap, exceed the geometry, or the MT zone
    /// cannot hold four 32-bit words per column.
    pub fn validate(&self, geometry: SubArrayGeometry) {
        assert!(self.bwt_rows.end <= self.cref_rows.start);
        assert!(self.cref_rows.end <= self.mt_rows.start);
        assert!(self.mt_rows.end <= self.reserved_rows.start);
        assert!(self.reserved_rows.end <= geometry.rows);
        assert_eq!(self.cref_rows.len(), 4, "one CRef row per nucleotide");
        assert!(
            self.mt_rows.len() >= 128,
            "MT zone must hold 4 × 32-bit vertical words"
        );
    }
}

/// `u64` words per packed 256-column row.
const WORDS_PER_ROW: usize = 4;

/// One packed row: words 0..2 hold bit-plane 0 (the low bit of each of
/// the 128 base codes, base `j` at plane bit `j`), words 2..4 hold
/// bit-plane 1 (the high bits).
type PackedRow = [u64; WORDS_PER_ROW];

/// Physical bit position of logical column `col` inside a packed row.
///
/// The logical column space is the paper's interleaved word line (base
/// `j`'s low bit at column `2j`, high bit at column `2j + 1`); physically
/// the planes are stored contiguously so `XNOR_Match` needs no bit
/// de-interleaving. The mapping is a fixed bijection applied uniformly to
/// every row, so cross-row column addressing (the vertical marker table,
/// stuck-at coordinates) stays self-consistent.
#[inline]
fn col_bit(col: usize) -> usize {
    (col >> 1) + ((col & 1) << 7)
}

/// The word-parallel result of one `XNOR_Match`: bit `j` set means the
/// base stored at position `j` of the bucket equals the compared base.
/// Stack-allocated — the `LFM` hot path never touches the heap.
///
/// # Examples
///
/// ```
/// use pimsim::MatchMask;
///
/// let mut m = MatchMask::default();
/// m.set(3, true);
/// m.set(100, true);
/// assert_eq!(m.count_ones(), 2);
/// assert_eq!(m.count_prefix(100), 1); // bits strictly below 100
/// assert!(m.get(3) && !m.get(4));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchMask(pub [u64; 2]);

impl MatchMask {
    /// Match-vector width (= the Occ bucket width `d`).
    pub const BITS: usize = SubArrayLayout::BASES_PER_ROW;

    /// Word masks selecting the bits strictly below position `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 128`.
    #[inline]
    pub fn prefix_words(n: usize) -> [u64; 2] {
        assert!(n <= Self::BITS, "prefix {n} out of range");
        match n {
            0..=63 => [(1u64 << n) - 1, 0],
            64 => [!0, 0],
            65..=127 => [!0, (1u64 << (n - 64)) - 1],
            _ => [!0, !0],
        }
    }

    /// The bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 128`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < Self::BITS, "match bit {i} out of range");
        (self.0[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Sets the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 128`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < Self::BITS, "match bit {i} out of range");
        let (w, b) = (i >> 6, i & 63);
        if value {
            self.0[w] |= 1 << b;
        } else {
            self.0[w] &= !(1 << b);
        }
    }

    /// Flips the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 128`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < Self::BITS, "match bit {i} out of range");
        self.0[i >> 6] ^= 1 << (i & 63);
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.0[0].count_ones() + self.0[1].count_ones()
    }

    /// Number of set bits strictly below position `n` — the `LFM` prefix
    /// popcount, evaluated as two masked `count_ones`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 128`.
    #[inline]
    pub fn count_prefix(&self, n: usize) -> u32 {
        let m = Self::prefix_words(n);
        (self.0[0] & m[0]).count_ones() + (self.0[1] & m[1]).count_ones()
    }

    /// [`MatchMask::count_prefix`] evaluated under a SIMD policy: `Auto`
    /// dispatches to the hardware `popcnt` instruction when the CPU has
    /// one, `Scalar` uses the portable expansion. Same result either way,
    /// pinned by test.
    ///
    /// # Panics
    ///
    /// Panics if `n > 128`.
    #[inline]
    pub fn count_prefix_with(&self, n: usize, policy: SimdPolicy) -> u32 {
        simd::masked_count(self.0, Self::prefix_words(n), policy)
    }

    /// The mask as 128 booleans (test/reference interop; not used on the
    /// hot path).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..Self::BITS).map(|i| self.get(i)).collect()
    }

    /// Builds a mask from up to 128 booleans (test/reference interop).
    ///
    /// # Panics
    ///
    /// Panics if more than 128 bits are given.
    pub fn from_bools(bits: &[bool]) -> MatchMask {
        assert!(bits.len() <= Self::BITS, "at most 128 match bits");
        let mut mask = MatchMask::default();
        for (i, &b) in bits.iter().enumerate() {
            if b {
                mask.0[i >> 6] |= 1 << (i & 63);
            }
        }
        mask
    }
}

/// One computational sub-array: functional contents plus the bulk
/// primitives of §IV-B, each charged to a [`CycleLedger`].
///
/// Functional results are produced by direct word-parallel boolean
/// evaluation for speed; the test suite proves every primitive agrees
/// with the [`SenseAmp`] circuit model bit-for-bit and with the scalar
/// [`reference`](crate::reference) kernel.
///
/// # Examples
///
/// ```
/// use pimsim::{CycleLedger, SubArray};
///
/// let mut sa = SubArray::new(mram::array::ArrayModel::default());
/// let mut ledger = CycleLedger::new();
/// // Load the paper's 2-bit codes for bases T,G,A,C into bucket row 0.
/// sa.load_bwt_row(0, &[0b00, 0b01, 0b10, 0b11], &mut ledger);
/// sa.load_cref_rows(&mut ledger);
/// // Compare against base A (code 0b10): exactly one position matches.
/// let matches = sa.xnor_match(0, bioseq::Base::A, &mut ledger);
/// assert_eq!(matches.count_ones(), 1);
/// assert!(matches.get(2));
/// ```
#[derive(Debug, Clone)]
pub struct SubArray {
    model: ArrayModel,
    layout: SubArrayLayout,
    /// Row-major packed bit matrix (see [`col_bit`] for the column
    /// mapping).
    rows: Vec<PackedRow>,
    /// Bases loaded into each BWT row (for bounds checking and the
    /// match-length mask).
    bwt_row_len: Vec<usize>,
}

impl SubArray {
    /// Creates an empty sub-array with the paper layout.
    pub fn new(model: ArrayModel) -> SubArray {
        let layout = SubArrayLayout::paper();
        layout.validate(model.geometry());
        let geometry = model.geometry();
        assert_eq!(
            geometry.cols,
            2 * SubArrayLayout::BASES_PER_ROW,
            "packed rows assume 256 columns"
        );
        SubArray {
            model,
            rows: vec![[0u64; WORDS_PER_ROW]; geometry.rows],
            bwt_row_len: vec![0; layout.bwt_rows.len()],
            layout,
        }
    }

    /// The zone layout.
    pub fn layout(&self) -> &SubArrayLayout {
        &self.layout
    }

    /// The array model pricing this sub-array's operations.
    pub fn model(&self) -> &ArrayModel {
        &self.model
    }

    /// Raw bit at `(row, col)` (test/debug accessor; no cycle charge).
    /// Columns use the paper's interleaved word-line addressing — base
    /// `j`'s low bit at column `2j`, high bit at `2j + 1`.
    pub fn bit(&self, row: usize, col: usize) -> bool {
        let p = col_bit(col);
        (self.rows[row][p >> 6] >> (p & 63)) & 1 == 1
    }

    /// Forces the cell at `(row, col)` to `value` — the stuck-at
    /// fault-injection hook (no cycle charge; this is damage, not an
    /// operation). The data zones are written once at mapping time, so a
    /// post-load force is behaviourally identical to a manufacturing
    /// stuck-at defect for BWT/CRef/MT contents.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates exceed the geometry.
    pub fn force_bit(&mut self, row: usize, col: usize, value: bool) {
        assert!(
            col < self.model.geometry().cols,
            "column {col} out of range"
        );
        let p = col_bit(col);
        let (w, b) = (p >> 6, p & 63);
        if value {
            self.rows[row][w] |= 1 << b;
        } else {
            self.rows[row][w] &= !(1 << b);
        }
    }

    /// Rows in the data zones (BWT + CRef + MT) — the region where
    /// stuck-at injection is meaningful; the reserved `IM_ADD` scratch is
    /// rewritten every addition, so its defects are modelled by the
    /// carry-chain fault mode instead.
    pub fn data_zone_rows(&self) -> usize {
        self.layout.mt_rows.end
    }

    /// Loads up to 128 2-bit base codes into BWT bucket row `bucket`
    /// (one `RowWrite`).
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is out of range or more than 128 codes are
    /// given.
    pub fn load_bwt_row(&mut self, bucket: usize, codes: &[u8], ledger: &mut CycleLedger) {
        assert!(
            bucket < self.layout.buckets(),
            "bucket {bucket} out of range"
        );
        assert!(
            codes.len() <= SubArrayLayout::BASES_PER_ROW,
            "at most 128 bases per row"
        );
        let mut plane0 = [0u64; 2];
        let mut plane1 = [0u64; 2];
        for (j, &code) in codes.iter().enumerate() {
            let (w, b) = (j >> 6, j & 63);
            plane0[w] |= ((code & 0b01) as u64) << b;
            plane1[w] |= (((code >> 1) & 1) as u64) << b;
        }
        // Only the first codes.len() positions are written; stale bits
        // beyond the loaded length keep their contents, as a partial row
        // write would on hardware.
        let written = MatchMask::prefix_words(codes.len());
        let row = &mut self.rows[self.layout.bwt_rows.start + bucket];
        for w in 0..2 {
            row[w] = (row[w] & !written[w]) | plane0[w];
            row[2 + w] = (row[2 + w] & !written[w]) | plane1[w];
        }
        self.bwt_row_len[bucket] = codes.len();
        LogicalOp::RowWrite.charge(&self.model, ledger);
    }

    /// Initialises the four `CRef` rows (one `RowWrite` each).
    pub fn load_cref_rows(&mut self, ledger: &mut CycleLedger) {
        for base in bioseq::Base::ALL {
            let code = base.code();
            let plane0 = if code & 0b01 != 0 { !0u64 } else { 0 };
            let plane1 = if code & 0b10 != 0 { !0u64 } else { 0 };
            self.rows[self.layout.cref_rows.start + base.rank()] = [plane0, plane0, plane1, plane1];
            LogicalOp::RowWrite.charge(&self.model, ledger);
        }
    }

    /// The parallel `XNOR_Match` primitive: compares BWT bucket `bucket`
    /// against the `CRef` row of `base`, returning one match bit per base
    /// position (`1` = the stored base equals `base`). Positions past
    /// the loaded length are `0`.
    ///
    /// Hardware: both bit-planes are XNOR-compared in one triple-row
    /// activation each (2 cycles), and a base matches when both of its
    /// bit lanes match. Host evaluation is word-parallel: two XNOR/AND
    /// word operations per 64 bases, no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is out of range.
    #[inline]
    pub fn xnor_match(
        &self,
        bucket: usize,
        base: bioseq::Base,
        ledger: &mut CycleLedger,
    ) -> MatchMask {
        self.xnor_match_with(bucket, base, SimdPolicy::Scalar, ledger)
    }

    /// [`SubArray::xnor_match`] evaluated under a SIMD policy: identical
    /// charge, identical result, only the host lane differs (`Auto`
    /// dispatches AVX2 → SSE2 → portable at runtime).
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is out of range.
    #[inline]
    pub fn xnor_match_with(
        &self,
        bucket: usize,
        base: bioseq::Base,
        policy: SimdPolicy,
        ledger: &mut CycleLedger,
    ) -> MatchMask {
        assert!(
            bucket < self.layout.buckets(),
            "bucket {bucket} out of range"
        );
        let bwt = &self.rows[self.layout.bwt_rows.start + bucket];
        let cref = &self.rows[self.layout.cref_rows.start + base.rank()];
        LogicalOp::XnorMatch.charge(&self.model, ledger);
        let loaded = MatchMask::prefix_words(self.bwt_row_len[bucket]);
        MatchMask(simd::plane_match(bwt, cref, loaded, policy))
    }

    /// Stores marker word `value` for `base` of bucket-column `bucket`
    /// in the vertical MT zone (32 bit-writes, charged as one `RowWrite`
    /// per occupied row group during bulk mapping — here one `RowWrite`).
    ///
    /// # Panics
    ///
    /// Panics if `bucket` exceeds the column count.
    pub fn store_marker(
        &mut self,
        bucket: usize,
        base: bioseq::Base,
        value: u32,
        ledger: &mut CycleLedger,
    ) {
        let cols = self.model.geometry().cols;
        assert!(bucket < cols, "marker column {bucket} out of range");
        let start = self.layout.mt_rows.start + base.rank() * 32;
        let p = col_bit(bucket);
        let (w, b) = (p >> 6, p & 63);
        for k in 0..32 {
            let row = &mut self.rows[start + k];
            if (value >> k) & 1 == 1 {
                row[w] |= 1 << b;
            } else {
                row[w] &= !(1 << b);
            }
        }
        LogicalOp::RowWrite.charge(&self.model, ledger);
    }

    /// Reads the marker word for `base` of bucket-column `bucket`
    /// (`MEM`, 11 cycles — three bits per cycle through the three
    /// sub-SAs).
    ///
    /// # Panics
    ///
    /// Panics if `bucket` exceeds the column count.
    pub fn read_marker(&self, bucket: usize, base: bioseq::Base, ledger: &mut CycleLedger) -> u32 {
        let cols = self.model.geometry().cols;
        assert!(bucket < cols, "marker column {bucket} out of range");
        let start = self.layout.mt_rows.start + base.rank() * 32;
        LogicalOp::MarkerRead.charge(&self.model, ledger);
        let p = col_bit(bucket);
        let (w, b) = (p >> 6, p & 63);
        (0..32).fold(0u32, |acc, k| {
            acc | ((((self.rows[start + k][w] >> b) & 1) as u32) << k)
        })
    }

    /// The in-memory 32-bit addition (`IM_ADD`): writes both operands
    /// bit-serially into the reserved zone, then produces sum (XOR3) and
    /// carry (MAJ) per bit through the reconfigurable SA. Returns the
    /// 32-bit sum (wrapping).
    ///
    /// The functional result is computed through the same
    /// XOR3/MAJ gate semantics the [`SenseAmp`] realises.
    pub fn im_add32(&mut self, a: u32, b: u32, ledger: &mut CycleLedger) -> u32 {
        self.add32_impl(a, b, None, ledger)
    }

    /// `IM_ADD` with an injected carry-chain fault: the ripple carry out
    /// of bit `kill_carry_at` is forced low (the reconfigurable SA's MAJ
    /// read fails for that cycle), and the corruption propagates through
    /// the remaining bits exactly as the hardware would.
    ///
    /// # Panics
    ///
    /// Panics if `kill_carry_at >= 32`.
    pub fn im_add32_faulty(
        &mut self,
        a: u32,
        b: u32,
        kill_carry_at: usize,
        ledger: &mut CycleLedger,
    ) -> u32 {
        assert!(kill_carry_at < 32, "carry bit {kill_carry_at} out of range");
        self.add32_impl(a, b, Some(kill_carry_at), ledger)
    }

    fn add32_impl(
        &mut self,
        a: u32,
        b: u32,
        kill_carry_at: Option<usize>,
        ledger: &mut CycleLedger,
    ) -> u32 {
        let base = self.layout.reserved_rows.start;
        let (a_rows, b_rows, sum_rows, carry_row) = (base, base + 32, base + 64, base + 96);
        // Stage the operands in column 0 (bulk transposed write, part of
        // the IM_ADD cost model rather than separate row writes).
        for k in 0..32 {
            self.rows[a_rows + k][0] =
                (self.rows[a_rows + k][0] & !1) | u64::from((a >> k) & 1 == 1);
            self.rows[b_rows + k][0] =
                (self.rows[b_rows + k][0] & !1) | u64::from((b >> k) & 1 == 1);
        }
        self.rows[carry_row][0] &= !1;
        LogicalOp::ImAdd32.charge(&self.model, ledger);
        let mut carry = false;
        let mut sum = 0u32;
        for k in 0..32 {
            let x = self.rows[a_rows + k][0] & 1 == 1;
            let y = self.rows[b_rows + k][0] & 1 == 1;
            // Gate-level semantics identical to SenseAmp::full_add; an
            // injected fault forces the MAJ (carry) read low at one bit.
            let s = x ^ y ^ carry;
            let c = ((x & y) | (x & carry) | (y & carry)) && kill_carry_at != Some(k);
            self.rows[sum_rows + k][0] = (self.rows[sum_rows + k][0] & !1) | u64::from(s);
            carry = c;
            self.rows[carry_row][0] = (self.rows[carry_row][0] & !1) | u64::from(c);
            if s {
                sum |= 1 << k;
            }
        }
        sum
    }

    /// Shared-platform `IM_ADD`: identical cost and XOR3/MAJ gate
    /// semantics to [`SubArray::im_add32`], without staging the operands
    /// in this sub-array's reserved scratch rows. The scratch zone is
    /// transient per-operation state — excluded from the data zone (see
    /// [`SubArray::data_zone_rows`]) and overwritten by every add — so a
    /// session sharing the mapped array with other sessions can skip the
    /// staging without any observable difference.
    pub fn im_add32_shared(&self, a: u32, b: u32, ledger: &mut CycleLedger) -> u32 {
        LogicalOp::ImAdd32.charge(&self.model, ledger);
        ripple_add32(a, b, None)
    }

    /// Shared-platform variant of [`SubArray::im_add32_faulty`]: the
    /// carry out of bit `kill_carry_at` is forced low and the corruption
    /// propagates exactly as in the staged add.
    ///
    /// # Panics
    ///
    /// Panics if `kill_carry_at >= 32`.
    pub fn im_add32_shared_faulty(
        &self,
        a: u32,
        b: u32,
        kill_carry_at: usize,
        ledger: &mut CycleLedger,
    ) -> u32 {
        assert!(kill_carry_at < 32, "carry bit {kill_carry_at} out of range");
        LogicalOp::ImAdd32.charge(&self.model, ledger);
        ripple_add32(a, b, Some(kill_carry_at))
    }

    /// Copies one row into another sub-array (method-II duplication);
    /// charges a read here and a write there.
    pub fn copy_row_to(
        &self,
        row: usize,
        dest: &mut SubArray,
        dest_row: usize,
        ledger: &mut CycleLedger,
    ) {
        LogicalOp::RowRead.charge(&self.model, ledger);
        LogicalOp::RowWrite.charge(&dest.model, ledger);
        dest.rows[dest_row] = self.rows[row];
    }
}

/// The ripple adder's gate-level arithmetic (XOR3 sum, MAJ carry, with
/// an optional killed carry bit) — the pure function both the staged and
/// the shared `IM_ADD` variants realise.
fn ripple_add32(a: u32, b: u32, kill_carry_at: Option<usize>) -> u32 {
    let mut carry = false;
    let mut sum = 0u32;
    for k in 0..32 {
        let x = (a >> k) & 1 == 1;
        let y = (b >> k) & 1 == 1;
        let s = x ^ y ^ carry;
        carry = ((x & y) | (x & carry) | (y & carry)) && kill_carry_at != Some(k);
        if s {
            sum |= 1 << k;
        }
    }
    sum
}

/// Proves the boolean fast path agrees with the analog circuit model for
/// every input combination (used by tests; exposed for the bench crate's
/// circuit-validation bench).
pub fn validate_functions_against_circuit(model: &ArrayModel) -> bool {
    let sa = SenseAmp::new(model.cell());
    let cell = model.cell();
    for a in [false, true] {
        for b in [false, true] {
            for c in [false, true] {
                let cells = [cell.resistance(a), cell.resistance(b), cell.resistance(c)];
                let circuit_sum = sa.evaluate(SenseMode::Xor3, &cells);
                let circuit_carry = sa.evaluate(SenseMode::Maj3, &cells);
                if circuit_sum != (a ^ b ^ c) || circuit_carry != ((a & b) | (a & c) | (b & c)) {
                    return false;
                }
                if sa.xnor2(a, b) == (a ^ b) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::Base;

    fn fresh() -> (SubArray, CycleLedger) {
        (SubArray::new(ArrayModel::default()), CycleLedger::new())
    }

    #[test]
    fn layout_matches_fig6a() {
        let l = SubArrayLayout::paper();
        l.validate(SubArrayGeometry::PAPER);
        assert_eq!(l.bwt_rows, 0..256);
        assert_eq!(l.cref_rows.len(), 4);
        assert_eq!(l.mt_rows.len(), 128);
        assert_eq!(l.reserved_rows.len(), 124);
        assert_eq!(l.bwt_capacity_bases(), 32_768);
    }

    #[test]
    fn bwt_row_round_trip_via_bits() {
        let (mut sa, mut ledger) = fresh();
        let codes: Vec<u8> = (0..128).map(|i| (i % 4) as u8).collect();
        sa.load_bwt_row(3, &codes, &mut ledger);
        for (j, &code) in codes.iter().enumerate() {
            assert_eq!(sa.bit(3, 2 * j), code & 1 != 0);
            assert_eq!(sa.bit(3, 2 * j + 1), code & 2 != 0);
        }
    }

    #[test]
    fn partial_row_reload_keeps_tail_bits() {
        let (mut sa, mut ledger) = fresh();
        let full: Vec<u8> = (0..128).map(|i| (i % 4) as u8).collect();
        sa.load_bwt_row(2, &full, &mut ledger);
        sa.load_bwt_row(2, &[0b11, 0b11], &mut ledger);
        // The shorter write touches only the first two base positions.
        assert!(sa.bit(2, 0) && sa.bit(2, 1) && sa.bit(2, 2) && sa.bit(2, 3));
        for (j, &code) in full.iter().enumerate().skip(2) {
            assert_eq!(sa.bit(2, 2 * j), code & 1 != 0, "stale low bit at {j}");
            assert_eq!(sa.bit(2, 2 * j + 1), code & 2 != 0, "stale high bit at {j}");
        }
        // But the match length shrinks to the new load.
        let m = sa.xnor_match(2, Base::from_rank(3), &mut ledger);
        assert!(m.count_prefix(128) <= 2);
    }

    #[test]
    fn xnor_match_finds_exactly_the_matching_bases() {
        let (mut sa, mut ledger) = fresh();
        sa.load_cref_rows(&mut ledger);
        // T G C T A in codes.
        let codes: Vec<u8> = [Base::T, Base::G, Base::C, Base::T, Base::A]
            .iter()
            .map(|b| b.code())
            .collect();
        sa.load_bwt_row(0, &codes, &mut ledger);
        let t_matches = sa.xnor_match(0, Base::T, &mut ledger);
        assert_eq!(
            &t_matches.to_bools()[..5],
            &[true, false, false, true, false]
        );
        assert_eq!(t_matches.count_ones(), 2, "tail must not match");
        let a_matches = sa.xnor_match(0, Base::A, &mut ledger);
        assert_eq!(
            &a_matches.to_bools()[..5],
            &[false, false, false, false, true]
        );
        assert_eq!(a_matches.count_ones(), 1);
    }

    #[test]
    fn xnor_match_counts_equal_scan_for_every_base() {
        let (mut sa, mut ledger) = fresh();
        sa.load_cref_rows(&mut ledger);
        let codes: Vec<u8> = (0..100).map(|i| ((i * 7 + 3) % 4) as u8).collect();
        sa.load_bwt_row(1, &codes, &mut ledger);
        for base in Base::ALL {
            let hw = sa.xnor_match(1, base, &mut ledger).count_ones() as usize;
            let oracle = codes
                .iter()
                .map(|&c| usize::from(c == base.code()))
                .sum::<usize>();
            assert_eq!(hw, oracle, "count mismatch for {base}");
        }
    }

    #[test]
    fn match_mask_prefix_count_equals_bool_scan() {
        let mut mask = MatchMask::default();
        for i in [0usize, 1, 63, 64, 65, 90, 127] {
            mask.set(i, true);
        }
        let bools = mask.to_bools();
        for n in 0..=128 {
            assert_eq!(
                mask.count_prefix(n) as usize,
                bools[..n].iter().filter(|&&b| b).count(),
                "prefix {n}"
            );
        }
        assert_eq!(MatchMask::from_bools(&bools), mask);
    }

    #[test]
    fn prefix_words_boundaries_cover_every_match_arm_seam() {
        // The 0..=63 / 64 / 65..=127 / 128 arms each have a seam; pin
        // the exact words on both sides of each one.
        assert_eq!(MatchMask::prefix_words(0), [0, 0]);
        assert_eq!(MatchMask::prefix_words(1), [1, 0]);
        assert_eq!(MatchMask::prefix_words(63), [(1u64 << 63) - 1, 0]);
        assert_eq!(MatchMask::prefix_words(64), [!0, 0]);
        assert_eq!(MatchMask::prefix_words(65), [!0, 1]);
        assert_eq!(MatchMask::prefix_words(127), [!0, (1u64 << 63) - 1]);
        assert_eq!(MatchMask::prefix_words(128), [!0, !0]);
        // Each boundary mask selects exactly n bits.
        for n in [0usize, 63, 64, 65, 127, 128] {
            let m = MatchMask::prefix_words(n);
            assert_eq!(
                m[0].count_ones() + m[1].count_ones(),
                n as u32,
                "prefix_words({n}) width"
            );
        }
    }

    #[test]
    #[should_panic(expected = "prefix 129 out of range")]
    fn prefix_words_rejects_out_of_range() {
        MatchMask::prefix_words(129);
    }

    #[test]
    fn count_ones_on_full_and_empty_masks() {
        assert_eq!(MatchMask::default().count_ones(), 0);
        let full = MatchMask([!0, !0]);
        assert_eq!(full.count_ones(), 128);
        for n in [0usize, 63, 64, 65, 127, 128] {
            assert_eq!(full.count_prefix(n), n as u32, "full mask prefix {n}");
            assert_eq!(MatchMask::default().count_prefix(n), 0);
        }
    }

    #[test]
    fn count_prefix_with_matches_scalar_for_every_policy() {
        let mut mask = MatchMask::default();
        for i in [0usize, 2, 62, 63, 64, 66, 126, 127] {
            mask.set(i, true);
        }
        for n in 0..=128 {
            let want = mask.count_prefix(n);
            for policy in [SimdPolicy::Scalar, SimdPolicy::Auto] {
                assert_eq!(mask.count_prefix_with(n, policy), want, "prefix {n}");
            }
        }
    }

    #[test]
    fn xnor_match_with_is_lane_invariant_and_charge_identical() {
        let (mut sa, mut ledger) = fresh();
        sa.load_cref_rows(&mut ledger);
        let codes: Vec<u8> = (0..128).map(|i| ((i * 13 + 1) % 4) as u8).collect();
        sa.load_bwt_row(5, &codes, &mut ledger);
        for base in Base::ALL {
            let mut scalar_ledger = CycleLedger::new();
            let mut auto_ledger = CycleLedger::new();
            let scalar = sa.xnor_match_with(5, base, SimdPolicy::Scalar, &mut scalar_ledger);
            let auto = sa.xnor_match_with(5, base, SimdPolicy::Auto, &mut auto_ledger);
            assert_eq!(scalar, auto, "lane divergence for {base}");
            assert_eq!(scalar, sa.xnor_match(5, base, &mut CycleLedger::new()));
            assert_eq!(scalar_ledger, auto_ledger, "charge divergence for {base}");
        }
    }

    #[test]
    fn marker_store_read_round_trip() {
        let (mut sa, mut ledger) = fresh();
        for bucket in [0usize, 17, 255] {
            for base in Base::ALL {
                let v = (bucket as u32) * 1_000_003 + base.rank() as u32;
                sa.store_marker(bucket, base, v, &mut ledger);
                assert_eq!(sa.read_marker(bucket, base, &mut ledger), v);
            }
        }
    }

    #[test]
    fn markers_in_distinct_columns_do_not_interfere() {
        let (mut sa, mut ledger) = fresh();
        sa.store_marker(10, Base::A, 0xAAAA_5555, &mut ledger);
        sa.store_marker(11, Base::A, 0x1234_5678, &mut ledger);
        sa.store_marker(10, Base::C, 0xDEAD_BEEF, &mut ledger);
        assert_eq!(sa.read_marker(10, Base::A, &mut ledger), 0xAAAA_5555);
        assert_eq!(sa.read_marker(11, Base::A, &mut ledger), 0x1234_5678);
        assert_eq!(sa.read_marker(10, Base::C, &mut ledger), 0xDEAD_BEEF);
    }

    #[test]
    fn im_add_matches_wrapping_add() {
        let (mut sa, mut ledger) = fresh();
        let cases = [
            (0u32, 0u32),
            (1, 1),
            (0xFFFF_FFFF, 1),
            (123_456_789, 987_654_321),
            (0x8000_0000, 0x8000_0000),
            (42, 0),
        ];
        for (a, b) in cases {
            assert_eq!(
                sa.im_add32(a, b, &mut ledger),
                a.wrapping_add(b),
                "{a} + {b}"
            );
        }
    }

    #[test]
    fn faulty_add_differs_only_when_a_carry_dies() {
        let (mut sa, mut ledger) = fresh();
        // 0xFFFF + 1 ripples a carry through the low 17 bits: killing it
        // anywhere below bit 16 corrupts the sum.
        let good = sa.im_add32(0xFFFF, 1, &mut ledger);
        assert_eq!(good, 0x1_0000);
        // Killing the carry out of bit 0 leaves 0xFFFF's high bits
        // un-incremented: 0 at bit 0, then bits 1..16 of the operand.
        let bad = sa.im_add32_faulty(0xFFFF, 1, 0, &mut ledger);
        assert_eq!(bad, 0xFFFE, "carry killed at bit 0 must stop the ripple");
        // No carry is generated at bit 20, so a fault there is silent.
        let silent = sa.im_add32_faulty(0xFFFF, 1, 20, &mut ledger);
        assert_eq!(silent, good);
    }

    #[test]
    fn shared_add_matches_staged_add_and_cost() {
        let (mut sa, mut ledger) = fresh();
        let cases = [
            (0u32, 0u32),
            (1, 1),
            (0xFFFF_FFFF, 1),
            (123_456_789, 987_654_321),
            (0x8000_0000, 0x8000_0000),
            (0xFFFF, 1),
        ];
        for (a, b) in cases {
            let mut staged_ledger = CycleLedger::new();
            let mut shared_ledger = CycleLedger::new();
            let staged = sa.im_add32(a, b, &mut staged_ledger);
            let shared = sa.im_add32_shared(a, b, &mut shared_ledger);
            assert_eq!(staged, shared, "{a} + {b}");
            assert_eq!(
                staged_ledger.total_busy_cycles(),
                shared_ledger.total_busy_cycles(),
                "shared add must charge the same cycles"
            );
            for k in [0usize, 7, 16, 31] {
                assert_eq!(
                    sa.im_add32_faulty(a, b, k, &mut ledger),
                    sa.im_add32_shared_faulty(a, b, k, &mut ledger),
                    "{a} + {b} with carry killed at {k}"
                );
            }
        }
    }

    #[test]
    fn forced_bit_persists_and_corrupts_reads() {
        let (mut sa, mut ledger) = fresh();
        sa.store_marker(9, Base::G, 0, &mut ledger);
        let start = sa.layout().mt_rows.start + Base::G.rank() * 32;
        sa.force_bit(start + 5, 9, true);
        assert_eq!(sa.read_marker(9, Base::G, &mut ledger), 1 << 5);
        assert!(sa.data_zone_rows() > start);
    }

    #[test]
    fn forced_bwt_bit_corrupts_the_match_vector() {
        let (mut sa, mut ledger) = fresh();
        sa.load_cref_rows(&mut ledger);
        let codes = vec![Base::A.code(); 8];
        sa.load_bwt_row(0, &codes, &mut ledger);
        assert_eq!(sa.xnor_match(0, Base::A, &mut ledger).count_ones(), 8);
        // Flip the low bit of base position 3: code 0b10 -> 0b11 (C).
        sa.force_bit(0, 2 * 3, true);
        let m = sa.xnor_match(0, Base::A, &mut ledger);
        assert_eq!(m.count_ones(), 7);
        assert!(!m.get(3));
        assert!(sa.xnor_match(0, Base::C, &mut ledger).get(3));
    }

    #[test]
    fn boolean_fast_path_agrees_with_circuit() {
        assert!(validate_functions_against_circuit(&ArrayModel::default()));
    }

    #[test]
    fn ledger_charges_accumulate_per_primitive() {
        let (mut sa, mut ledger) = fresh();
        sa.load_cref_rows(&mut ledger);
        let before = ledger.total_busy_cycles();
        let _ = sa.xnor_match(0, Base::G, &mut ledger);
        assert_eq!(
            ledger.total_busy_cycles() - before,
            LogicalOp::XnorMatch.cycles()
        );
    }

    #[test]
    fn copy_row_duplicates_contents() {
        let (mut src, mut ledger) = fresh();
        let mut dst = SubArray::new(ArrayModel::default());
        let codes: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        src.load_bwt_row(5, &codes, &mut ledger);
        src.copy_row_to(5, &mut dst, 7, &mut ledger);
        for col in 0..128 {
            assert_eq!(src.bit(5, col), dst.bit(7, col));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_bucket_panics() {
        let (sa, mut ledger) = fresh();
        let _ = sa.xnor_match(300, Base::A, &mut ledger);
    }
}
