//! The computational sub-array: functional bit storage plus the three
//! bulk primitives, laid out per Fig. 6a.

use std::ops::Range;

use mram::array::{ArrayModel, SubArrayGeometry};
use mram::sense::{SenseAmp, SenseMode};

use crate::costs::LogicalOp;
use crate::ledger::CycleLedger;

/// The Fig. 6a zone partitioning of a 512×256 sub-array:
///
/// * 256 rows of BWT, 128 bases (2 bits each) per row — one Occ bucket
///   per row;
/// * 4 `CRef` rows, one per nucleotide, holding the base's 2-bit code
///   repeated across the word line;
/// * 128 rows of vertically stored markers: each *column* holds the four
///   32-bit markers (A, C, G, T) of one bucket;
/// * 124 reserved rows of `IM_ADD` scratch (operands, sum, carry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubArrayLayout {
    /// Rows holding BWT buckets.
    pub bwt_rows: Range<usize>,
    /// The four computational-reference rows.
    pub cref_rows: Range<usize>,
    /// Rows of the vertical marker table.
    pub mt_rows: Range<usize>,
    /// Scratch rows for in-memory addition.
    pub reserved_rows: Range<usize>,
}

impl SubArrayLayout {
    /// Bases per BWT row (= the Occ bucket width `d`).
    pub const BASES_PER_ROW: usize = 128;

    /// The paper's partitioning of the 512-row sub-array.
    pub fn paper() -> SubArrayLayout {
        SubArrayLayout {
            bwt_rows: 0..256,
            cref_rows: 256..260,
            mt_rows: 260..388,
            reserved_rows: 388..512,
        }
    }

    /// Number of BWT buckets this sub-array holds.
    pub fn buckets(&self) -> usize {
        self.bwt_rows.len()
    }

    /// Total BWT bases this sub-array covers.
    pub fn bwt_capacity_bases(&self) -> usize {
        self.buckets() * Self::BASES_PER_ROW
    }

    /// Validates the layout against a geometry.
    ///
    /// # Panics
    ///
    /// Panics if zones overlap, exceed the geometry, or the MT zone
    /// cannot hold four 32-bit words per column.
    pub fn validate(&self, geometry: SubArrayGeometry) {
        assert!(self.bwt_rows.end <= self.cref_rows.start);
        assert!(self.cref_rows.end <= self.mt_rows.start);
        assert!(self.mt_rows.end <= self.reserved_rows.start);
        assert!(self.reserved_rows.end <= geometry.rows);
        assert_eq!(self.cref_rows.len(), 4, "one CRef row per nucleotide");
        assert!(
            self.mt_rows.len() >= 128,
            "MT zone must hold 4 × 32-bit vertical words"
        );
    }
}

/// One computational sub-array: functional contents plus the bulk
/// primitives of §IV-B, each charged to a [`CycleLedger`].
///
/// Functional results are produced by direct boolean evaluation for
/// speed; the test suite proves every primitive agrees with the
/// [`SenseAmp`] circuit model bit-for-bit.
///
/// # Examples
///
/// ```
/// use pimsim::{CycleLedger, SubArray};
///
/// let mut sa = SubArray::new(mram::array::ArrayModel::default());
/// let mut ledger = CycleLedger::new();
/// // Load the paper's 2-bit codes for bases T,G,A,C into bucket row 0.
/// sa.load_bwt_row(0, &[0b00, 0b01, 0b10, 0b11], &mut ledger);
/// sa.load_cref_rows(&mut ledger);
/// // Compare against base A (code 0b10): exactly one position matches.
/// let matches = sa.xnor_match(0, bioseq::Base::A, &mut ledger);
/// assert_eq!(matches[..4], [false, false, true, false]);
/// ```
#[derive(Debug, Clone)]
pub struct SubArray {
    model: ArrayModel,
    layout: SubArrayLayout,
    /// Row-major bit matrix.
    bits: Vec<Vec<bool>>,
    /// Bases loaded into each BWT row (for bounds checking).
    bwt_row_len: Vec<usize>,
}

impl SubArray {
    /// Creates an empty sub-array with the paper layout.
    pub fn new(model: ArrayModel) -> SubArray {
        let layout = SubArrayLayout::paper();
        layout.validate(model.geometry());
        let geometry = model.geometry();
        SubArray {
            model,
            bits: vec![vec![false; geometry.cols]; geometry.rows],
            bwt_row_len: vec![0; layout.bwt_rows.len()],
            layout,
        }
    }

    /// The zone layout.
    pub fn layout(&self) -> &SubArrayLayout {
        &self.layout
    }

    /// The array model pricing this sub-array's operations.
    pub fn model(&self) -> &ArrayModel {
        &self.model
    }

    /// Raw bit at `(row, col)` (test/debug accessor; no cycle charge).
    pub fn bit(&self, row: usize, col: usize) -> bool {
        self.bits[row][col]
    }

    /// Forces the cell at `(row, col)` to `value` — the stuck-at
    /// fault-injection hook (no cycle charge; this is damage, not an
    /// operation). The data zones are written once at mapping time, so a
    /// post-load force is behaviourally identical to a manufacturing
    /// stuck-at defect for BWT/CRef/MT contents.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates exceed the geometry.
    pub fn force_bit(&mut self, row: usize, col: usize, value: bool) {
        self.bits[row][col] = value;
    }

    /// Rows in the data zones (BWT + CRef + MT) — the region where
    /// stuck-at injection is meaningful; the reserved `IM_ADD` scratch is
    /// rewritten every addition, so its defects are modelled by the
    /// carry-chain fault mode instead.
    pub fn data_zone_rows(&self) -> usize {
        self.layout.mt_rows.end
    }

    /// Loads up to 128 2-bit base codes into BWT bucket row `bucket`
    /// (one `RowWrite`).
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is out of range or more than 128 codes are
    /// given.
    pub fn load_bwt_row(&mut self, bucket: usize, codes: &[u8], ledger: &mut CycleLedger) {
        assert!(
            bucket < self.layout.buckets(),
            "bucket {bucket} out of range"
        );
        assert!(
            codes.len() <= SubArrayLayout::BASES_PER_ROW,
            "at most 128 bases per row"
        );
        let row = self.layout.bwt_rows.start + bucket;
        for (j, &code) in codes.iter().enumerate() {
            self.bits[row][2 * j] = code & 0b01 != 0;
            self.bits[row][2 * j + 1] = code & 0b10 != 0;
        }
        self.bwt_row_len[bucket] = codes.len();
        LogicalOp::RowWrite.charge(&self.model, ledger);
    }

    /// Initialises the four `CRef` rows (one `RowWrite` each).
    pub fn load_cref_rows(&mut self, ledger: &mut CycleLedger) {
        for base in bioseq::Base::ALL {
            let row = self.layout.cref_rows.start + base.rank();
            let code = base.code();
            for j in 0..SubArrayLayout::BASES_PER_ROW {
                self.bits[row][2 * j] = code & 0b01 != 0;
                self.bits[row][2 * j + 1] = code & 0b10 != 0;
            }
            LogicalOp::RowWrite.charge(&self.model, ledger);
        }
    }

    /// The parallel `XNOR_Match` primitive: compares BWT bucket `bucket`
    /// against the `CRef` row of `base`, returning one boolean per base
    /// position (`true` = the stored base equals `base`). Positions past
    /// the loaded length are `false`.
    ///
    /// Hardware: both bit-planes are XNOR-compared in one triple-row
    /// activation each (2 cycles), and a base matches when both of its
    /// bit lanes match.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is out of range.
    pub fn xnor_match(
        &self,
        bucket: usize,
        base: bioseq::Base,
        ledger: &mut CycleLedger,
    ) -> Vec<bool> {
        assert!(
            bucket < self.layout.buckets(),
            "bucket {bucket} out of range"
        );
        let bwt_row = self.layout.bwt_rows.start + bucket;
        let cref_row = self.layout.cref_rows.start + base.rank();
        LogicalOp::XnorMatch.charge(&self.model, ledger);
        (0..SubArrayLayout::BASES_PER_ROW)
            .map(|j| {
                j < self.bwt_row_len[bucket]
                    && self.bits[bwt_row][2 * j] == self.bits[cref_row][2 * j]
                    && self.bits[bwt_row][2 * j + 1] == self.bits[cref_row][2 * j + 1]
            })
            .collect()
    }

    /// Stores marker word `value` for `base` of bucket-column `bucket`
    /// in the vertical MT zone (32 bit-writes, charged as one `RowWrite`
    /// per occupied row group during bulk mapping — here one `RowWrite`).
    ///
    /// # Panics
    ///
    /// Panics if `bucket` exceeds the column count.
    pub fn store_marker(
        &mut self,
        bucket: usize,
        base: bioseq::Base,
        value: u32,
        ledger: &mut CycleLedger,
    ) {
        let cols = self.model.geometry().cols;
        assert!(bucket < cols, "marker column {bucket} out of range");
        let start = self.layout.mt_rows.start + base.rank() * 32;
        for k in 0..32 {
            self.bits[start + k][bucket] = (value >> k) & 1 == 1;
        }
        LogicalOp::RowWrite.charge(&self.model, ledger);
    }

    /// Reads the marker word for `base` of bucket-column `bucket`
    /// (`MEM`, 11 cycles — three bits per cycle through the three
    /// sub-SAs).
    ///
    /// # Panics
    ///
    /// Panics if `bucket` exceeds the column count.
    pub fn read_marker(&self, bucket: usize, base: bioseq::Base, ledger: &mut CycleLedger) -> u32 {
        let cols = self.model.geometry().cols;
        assert!(bucket < cols, "marker column {bucket} out of range");
        let start = self.layout.mt_rows.start + base.rank() * 32;
        LogicalOp::MarkerRead.charge(&self.model, ledger);
        (0..32).fold(0u32, |acc, k| {
            acc | ((self.bits[start + k][bucket] as u32) << k)
        })
    }

    /// The in-memory 32-bit addition (`IM_ADD`): writes both operands
    /// bit-serially into the reserved zone, then produces sum (XOR3) and
    /// carry (MAJ) per bit through the reconfigurable SA. Returns the
    /// 32-bit sum (wrapping).
    ///
    /// The functional result is computed through the same
    /// XOR3/MAJ gate semantics the [`SenseAmp`] realises.
    pub fn im_add32(&mut self, a: u32, b: u32, ledger: &mut CycleLedger) -> u32 {
        self.add32_impl(a, b, None, ledger)
    }

    /// `IM_ADD` with an injected carry-chain fault: the ripple carry out
    /// of bit `kill_carry_at` is forced low (the reconfigurable SA's MAJ
    /// read fails for that cycle), and the corruption propagates through
    /// the remaining bits exactly as the hardware would.
    ///
    /// # Panics
    ///
    /// Panics if `kill_carry_at >= 32`.
    pub fn im_add32_faulty(
        &mut self,
        a: u32,
        b: u32,
        kill_carry_at: usize,
        ledger: &mut CycleLedger,
    ) -> u32 {
        assert!(kill_carry_at < 32, "carry bit {kill_carry_at} out of range");
        self.add32_impl(a, b, Some(kill_carry_at), ledger)
    }

    fn add32_impl(
        &mut self,
        a: u32,
        b: u32,
        kill_carry_at: Option<usize>,
        ledger: &mut CycleLedger,
    ) -> u32 {
        let base = self.layout.reserved_rows.start;
        let (a_rows, b_rows, sum_rows, carry_row) = (base, base + 32, base + 64, base + 96);
        // Stage the operands (bulk transposed write, part of the IM_ADD
        // cost model rather than separate row writes).
        for k in 0..32 {
            self.bits[a_rows + k][0] = (a >> k) & 1 == 1;
            self.bits[b_rows + k][0] = (b >> k) & 1 == 1;
        }
        self.bits[carry_row][0] = false;
        LogicalOp::ImAdd32.charge(&self.model, ledger);
        let mut carry = false;
        let mut sum = 0u32;
        for k in 0..32 {
            let x = self.bits[a_rows + k][0];
            let y = self.bits[b_rows + k][0];
            // Gate-level semantics identical to SenseAmp::full_add; an
            // injected fault forces the MAJ (carry) read low at one bit.
            let s = x ^ y ^ carry;
            let c = ((x & y) | (x & carry) | (y & carry)) && kill_carry_at != Some(k);
            self.bits[sum_rows + k][0] = s;
            carry = c;
            self.bits[carry_row][0] = c;
            if s {
                sum |= 1 << k;
            }
        }
        sum
    }

    /// Shared-platform `IM_ADD`: identical cost and XOR3/MAJ gate
    /// semantics to [`SubArray::im_add32`], without staging the operands
    /// in this sub-array's reserved scratch rows. The scratch zone is
    /// transient per-operation state — excluded from the data zone (see
    /// [`SubArray::data_zone_rows`]) and overwritten by every add — so a
    /// session sharing the mapped array with other sessions can skip the
    /// staging without any observable difference.
    pub fn im_add32_shared(&self, a: u32, b: u32, ledger: &mut CycleLedger) -> u32 {
        LogicalOp::ImAdd32.charge(&self.model, ledger);
        ripple_add32(a, b, None)
    }

    /// Shared-platform variant of [`SubArray::im_add32_faulty`]: the
    /// carry out of bit `kill_carry_at` is forced low and the corruption
    /// propagates exactly as in the staged add.
    ///
    /// # Panics
    ///
    /// Panics if `kill_carry_at >= 32`.
    pub fn im_add32_shared_faulty(
        &self,
        a: u32,
        b: u32,
        kill_carry_at: usize,
        ledger: &mut CycleLedger,
    ) -> u32 {
        assert!(kill_carry_at < 32, "carry bit {kill_carry_at} out of range");
        LogicalOp::ImAdd32.charge(&self.model, ledger);
        ripple_add32(a, b, Some(kill_carry_at))
    }

    /// Copies one row into another sub-array (method-II duplication);
    /// charges a read here and a write there.
    pub fn copy_row_to(
        &self,
        row: usize,
        dest: &mut SubArray,
        dest_row: usize,
        ledger: &mut CycleLedger,
    ) {
        LogicalOp::RowRead.charge(&self.model, ledger);
        LogicalOp::RowWrite.charge(&dest.model, ledger);
        let src = self.bits[row].clone();
        dest.bits[dest_row] = src;
    }
}

/// The ripple adder's gate-level arithmetic (XOR3 sum, MAJ carry, with
/// an optional killed carry bit) — the pure function both the staged and
/// the shared `IM_ADD` variants realise.
fn ripple_add32(a: u32, b: u32, kill_carry_at: Option<usize>) -> u32 {
    let mut carry = false;
    let mut sum = 0u32;
    for k in 0..32 {
        let x = (a >> k) & 1 == 1;
        let y = (b >> k) & 1 == 1;
        let s = x ^ y ^ carry;
        carry = ((x & y) | (x & carry) | (y & carry)) && kill_carry_at != Some(k);
        if s {
            sum |= 1 << k;
        }
    }
    sum
}

/// Proves the boolean fast path agrees with the analog circuit model for
/// every input combination (used by tests; exposed for the bench crate's
/// circuit-validation bench).
pub fn validate_functions_against_circuit(model: &ArrayModel) -> bool {
    let sa = SenseAmp::new(model.cell());
    let cell = model.cell();
    for a in [false, true] {
        for b in [false, true] {
            for c in [false, true] {
                let cells = [cell.resistance(a), cell.resistance(b), cell.resistance(c)];
                let circuit_sum = sa.evaluate(SenseMode::Xor3, &cells);
                let circuit_carry = sa.evaluate(SenseMode::Maj3, &cells);
                if circuit_sum != (a ^ b ^ c) || circuit_carry != ((a & b) | (a & c) | (b & c)) {
                    return false;
                }
                if sa.xnor2(a, b) == (a ^ b) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bioseq::Base;

    fn fresh() -> (SubArray, CycleLedger) {
        (SubArray::new(ArrayModel::default()), CycleLedger::new())
    }

    #[test]
    fn layout_matches_fig6a() {
        let l = SubArrayLayout::paper();
        l.validate(SubArrayGeometry::PAPER);
        assert_eq!(l.bwt_rows, 0..256);
        assert_eq!(l.cref_rows.len(), 4);
        assert_eq!(l.mt_rows.len(), 128);
        assert_eq!(l.reserved_rows.len(), 124);
        assert_eq!(l.bwt_capacity_bases(), 32_768);
    }

    #[test]
    fn bwt_row_round_trip_via_bits() {
        let (mut sa, mut ledger) = fresh();
        let codes: Vec<u8> = (0..128).map(|i| (i % 4) as u8).collect();
        sa.load_bwt_row(3, &codes, &mut ledger);
        for (j, &code) in codes.iter().enumerate() {
            assert_eq!(sa.bit(3, 2 * j), code & 1 != 0);
            assert_eq!(sa.bit(3, 2 * j + 1), code & 2 != 0);
        }
    }

    #[test]
    fn xnor_match_finds_exactly_the_matching_bases() {
        let (mut sa, mut ledger) = fresh();
        sa.load_cref_rows(&mut ledger);
        // T G C T A in codes.
        let codes: Vec<u8> = [Base::T, Base::G, Base::C, Base::T, Base::A]
            .iter()
            .map(|b| b.code())
            .collect();
        sa.load_bwt_row(0, &codes, &mut ledger);
        let t_matches = sa.xnor_match(0, Base::T, &mut ledger);
        assert_eq!(&t_matches[..5], &[true, false, false, true, false]);
        assert!(t_matches[5..].iter().all(|&m| !m), "tail must not match");
        let a_matches = sa.xnor_match(0, Base::A, &mut ledger);
        assert_eq!(&a_matches[..5], &[false, false, false, false, true]);
    }

    #[test]
    fn xnor_match_counts_equal_scan_for_every_base() {
        let (mut sa, mut ledger) = fresh();
        sa.load_cref_rows(&mut ledger);
        let codes: Vec<u8> = (0..100).map(|i| ((i * 7 + 3) % 4) as u8).collect();
        sa.load_bwt_row(1, &codes, &mut ledger);
        for base in Base::ALL {
            let hw: usize = sa
                .xnor_match(1, base, &mut ledger)
                .iter()
                .filter(|&&m| m)
                .count();
            let oracle = codes.iter().filter(|&&c| c == base.code()).count();
            assert_eq!(hw, oracle, "count mismatch for {base}");
        }
    }

    #[test]
    fn marker_store_read_round_trip() {
        let (mut sa, mut ledger) = fresh();
        for bucket in [0usize, 17, 255] {
            for base in Base::ALL {
                let v = (bucket as u32) * 1_000_003 + base.rank() as u32;
                sa.store_marker(bucket, base, v, &mut ledger);
                assert_eq!(sa.read_marker(bucket, base, &mut ledger), v);
            }
        }
    }

    #[test]
    fn markers_in_distinct_columns_do_not_interfere() {
        let (mut sa, mut ledger) = fresh();
        sa.store_marker(10, Base::A, 0xAAAA_5555, &mut ledger);
        sa.store_marker(11, Base::A, 0x1234_5678, &mut ledger);
        sa.store_marker(10, Base::C, 0xDEAD_BEEF, &mut ledger);
        assert_eq!(sa.read_marker(10, Base::A, &mut ledger), 0xAAAA_5555);
        assert_eq!(sa.read_marker(11, Base::A, &mut ledger), 0x1234_5678);
        assert_eq!(sa.read_marker(10, Base::C, &mut ledger), 0xDEAD_BEEF);
    }

    #[test]
    fn im_add_matches_wrapping_add() {
        let (mut sa, mut ledger) = fresh();
        let cases = [
            (0u32, 0u32),
            (1, 1),
            (0xFFFF_FFFF, 1),
            (123_456_789, 987_654_321),
            (0x8000_0000, 0x8000_0000),
            (42, 0),
        ];
        for (a, b) in cases {
            assert_eq!(
                sa.im_add32(a, b, &mut ledger),
                a.wrapping_add(b),
                "{a} + {b}"
            );
        }
    }

    #[test]
    fn faulty_add_differs_only_when_a_carry_dies() {
        let (mut sa, mut ledger) = fresh();
        // 0xFFFF + 1 ripples a carry through the low 17 bits: killing it
        // anywhere below bit 16 corrupts the sum.
        let good = sa.im_add32(0xFFFF, 1, &mut ledger);
        assert_eq!(good, 0x1_0000);
        // Killing the carry out of bit 0 leaves 0xFFFF's high bits
        // un-incremented: 0 at bit 0, then bits 1..16 of the operand.
        let bad = sa.im_add32_faulty(0xFFFF, 1, 0, &mut ledger);
        assert_eq!(bad, 0xFFFE, "carry killed at bit 0 must stop the ripple");
        // No carry is generated at bit 20, so a fault there is silent.
        let silent = sa.im_add32_faulty(0xFFFF, 1, 20, &mut ledger);
        assert_eq!(silent, good);
    }

    #[test]
    fn shared_add_matches_staged_add_and_cost() {
        let (mut sa, mut ledger) = fresh();
        let cases = [
            (0u32, 0u32),
            (1, 1),
            (0xFFFF_FFFF, 1),
            (123_456_789, 987_654_321),
            (0x8000_0000, 0x8000_0000),
            (0xFFFF, 1),
        ];
        for (a, b) in cases {
            let mut staged_ledger = CycleLedger::new();
            let mut shared_ledger = CycleLedger::new();
            let staged = sa.im_add32(a, b, &mut staged_ledger);
            let shared = sa.im_add32_shared(a, b, &mut shared_ledger);
            assert_eq!(staged, shared, "{a} + {b}");
            assert_eq!(
                staged_ledger.total_busy_cycles(),
                shared_ledger.total_busy_cycles(),
                "shared add must charge the same cycles"
            );
            for k in [0usize, 7, 16, 31] {
                assert_eq!(
                    sa.im_add32_faulty(a, b, k, &mut ledger),
                    sa.im_add32_shared_faulty(a, b, k, &mut ledger),
                    "{a} + {b} with carry killed at {k}"
                );
            }
        }
    }

    #[test]
    fn forced_bit_persists_and_corrupts_reads() {
        let (mut sa, mut ledger) = fresh();
        sa.store_marker(9, Base::G, 0, &mut ledger);
        let start = sa.layout().mt_rows.start + Base::G.rank() * 32;
        sa.force_bit(start + 5, 9, true);
        assert_eq!(sa.read_marker(9, Base::G, &mut ledger), 1 << 5);
        assert!(sa.data_zone_rows() > start);
    }

    #[test]
    fn boolean_fast_path_agrees_with_circuit() {
        assert!(validate_functions_against_circuit(&ArrayModel::default()));
    }

    #[test]
    fn ledger_charges_accumulate_per_primitive() {
        let (mut sa, mut ledger) = fresh();
        sa.load_cref_rows(&mut ledger);
        let before = ledger.total_busy_cycles();
        let _ = sa.xnor_match(0, Base::G, &mut ledger);
        assert_eq!(
            ledger.total_busy_cycles() - before,
            LogicalOp::XnorMatch.cycles()
        );
    }

    #[test]
    fn copy_row_duplicates_contents() {
        let (mut src, mut ledger) = fresh();
        let mut dst = SubArray::new(ArrayModel::default());
        let codes: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
        src.load_bwt_row(5, &codes, &mut ledger);
        src.copy_row_to(5, &mut dst, 7, &mut ledger);
        for col in 0..128 {
            assert_eq!(src.bit(5, col), dst.bit(7, col));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_bucket_panics() {
        let (sa, mut ledger) = fresh();
        let _ = sa.xnor_match(300, Base::A, &mut ledger);
    }
}
