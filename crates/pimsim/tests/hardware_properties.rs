//! Property tests on the simulated hardware's invariants.

use bioseq::Base;
use mram::array::ArrayModel;
use pimsim::{CycleLedger, Dpu, SubArray};
use proptest::prelude::*;

proptest! {
    #[test]
    fn im_add_is_wrapping_u32_addition(a in any::<u32>(), b in any::<u32>()) {
        let mut sub = SubArray::new(ArrayModel::default());
        let mut ledger = CycleLedger::new();
        prop_assert_eq!(sub.im_add32(a, b, &mut ledger), a.wrapping_add(b));
    }

    #[test]
    fn im_add_is_commutative(a in any::<u32>(), b in any::<u32>()) {
        let mut sub = SubArray::new(ArrayModel::default());
        let mut ledger = CycleLedger::new();
        let ab = sub.im_add32(a, b, &mut ledger);
        let ba = sub.im_add32(b, a, &mut ledger);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn marker_storage_round_trips(values in proptest::collection::vec(any::<u32>(), 1..32)) {
        let mut sub = SubArray::new(ArrayModel::default());
        let mut ledger = CycleLedger::new();
        for (i, &v) in values.iter().enumerate() {
            let base = Base::from_rank(i % 4);
            sub.store_marker(i % 256, base, v, &mut ledger);
        }
        for (i, &v) in values.iter().enumerate() {
            let base = Base::from_rank(i % 4);
            prop_assert_eq!(sub.read_marker(i % 256, base, &mut ledger), v);
        }
    }

    #[test]
    fn xnor_match_counts_equal_scan(codes in proptest::collection::vec(0u8..4, 0..128)) {
        let mut sub = SubArray::new(ArrayModel::default());
        let mut ledger = CycleLedger::new();
        sub.load_cref_rows(&mut ledger);
        sub.load_bwt_row(0, &codes, &mut ledger);
        for base in Base::ALL {
            let hw = sub.xnor_match(0, base, &mut ledger).count_ones() as usize;
            let oracle = codes.iter().map(|&c| usize::from(c == base.code())).sum::<usize>();
            prop_assert_eq!(hw, oracle);
        }
    }

    #[test]
    fn popcount_equals_manual_count(
        bits in proptest::collection::vec(any::<bool>(), 0..128),
        frac in 0.0f64..=1.0,
    ) {
        let mut dpu = Dpu::new(ArrayModel::default());
        let mut ledger = CycleLedger::new();
        let limit = (bits.len() as f64 * frac) as usize;
        let hw = dpu.count_matches(&bits, limit, &mut ledger);
        let oracle = bits[..limit].iter().filter(|&&b| b).count() as u32;
        prop_assert_eq!(hw, oracle);
    }

    #[test]
    fn ledger_merge_is_additive(
        xnor_a in 0u64..50, xnor_b in 0u64..50,
        reads_a in 0u64..50, reads_b in 0u64..50,
    ) {
        use mram::array::ArrayOp;
        use pimsim::Resource;
        let model = ArrayModel::default();
        let mut a = CycleLedger::new();
        a.charge(&model, Resource::Compare, ArrayOp::ComputeTriple, xnor_a);
        a.charge(&model, Resource::Memory, ArrayOp::ReadRow, reads_a);
        let mut b = CycleLedger::new();
        b.charge(&model, Resource::Compare, ArrayOp::ComputeTriple, xnor_b);
        b.charge(&model, Resource::Memory, ArrayOp::ReadRow, reads_b);
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(
            merged.busy_cycles(Resource::Compare),
            a.busy_cycles(Resource::Compare) + b.busy_cycles(Resource::Compare)
        );
        prop_assert_eq!(
            merged.busy_cycles(Resource::Memory),
            reads_a + reads_b
        );
        prop_assert!((merged.energy_pj() - (a.energy_pj() + b.energy_pj())).abs() < 1e-9);
    }
}
