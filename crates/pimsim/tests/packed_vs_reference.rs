//! Property tests pinning the packed bit-plane kernel to the boolean
//! reference implementation (DESIGN.md §11).
//!
//! The bit-plane packing is a host-side optimisation: over random BWT
//! rows, bucket lengths, sentinel positions, stuck-at cells, and fault
//! seeds (campaigns on and off), the packed compare stage must return
//! exactly the reference's `count_match`, flip exactly the reference's
//! bits, and charge exactly the reference's cycles.

use bioseq::Base;
use mram::array::ArrayModel;
use mram::faults::{FaultCampaign, FaultModel};
use pimsim::costs::LogicalOp;
use pimsim::reference::{packed_compare_stage, reference_compare_stage, BoolSubArray};
use pimsim::{CycleLedger, FaultInjector, KernelCache, LfmBatch, SimdPolicy, SubArray};
use proptest::prelude::*;

/// Builds the packed and the reference sub-array with identical BWT
/// contents and identical stuck cells forced into bucket row 0.
fn twin_arrays(codes: &[u8], stuck_enc: &[usize]) -> (SubArray, BoolSubArray) {
    let model = ArrayModel::default();
    let mut scratch = CycleLedger::new();
    let mut packed = SubArray::new(model);
    let mut reference = BoolSubArray::new(model);
    packed.load_cref_rows(&mut scratch);
    reference.load_cref_rows(&mut scratch);
    packed.load_bwt_row(0, codes, &mut scratch);
    reference.load_bwt_row(0, codes, &mut scratch);
    // Encoded stuck cells: low 8 bits are the column, bit 8 the value
    // (the vendored proptest has no tuple strategies).
    for &enc in stuck_enc {
        let (col, value) = (enc % 256, enc >= 256);
        packed.force_bit(0, col, value);
        reference.force_bwt_bit(0, col, value);
    }
    (packed, reference)
}

proptest! {
    #[test]
    fn match_vectors_agree_bit_for_bit(
        codes in proptest::collection::vec(0u8..4, 0..=128),
        stuck_enc in proptest::collection::vec(0usize..512, 0..6),
    ) {
        let (packed, reference) = twin_arrays(&codes, &stuck_enc);
        let mut ledger_p = CycleLedger::new();
        let mut ledger_r = CycleLedger::new();
        for base in Base::ALL {
            let mask = packed.xnor_match(0, base, &mut ledger_p);
            let bools = reference.xnor_match(0, base, &mut ledger_r);
            prop_assert_eq!(mask.to_bools(), bools, "base {}", base);
        }
        prop_assert_eq!(ledger_p.total_busy_cycles(), ledger_r.total_busy_cycles());
        prop_assert_eq!(ledger_p.primitives(), ledger_r.primitives());
    }

    #[test]
    fn compare_stage_agrees_with_faults_off(
        codes in proptest::collection::vec(0u8..4, 1..=128),
        sentinel_enc in 0usize..256,
        within_frac in 0.0f64..=1.0,
        base_rank in 0usize..4,
    ) {
        let sentinel = (sentinel_enc < 128).then_some(sentinel_enc);
        let within = (codes.len() as f64 * within_frac) as usize;
        let (packed, reference) = twin_arrays(&codes, &[]);
        let base = Base::from_rank(base_rank);
        let mut ledger_p = CycleLedger::new();
        let mut ledger_r = CycleLedger::new();
        let count_p =
            packed_compare_stage(&packed, 0, base, sentinel, within, None, &mut ledger_p);
        let count_r =
            reference_compare_stage(&reference, 0, base, sentinel, within, None, &mut ledger_r);
        prop_assert_eq!(count_p, count_r);
        prop_assert_eq!(ledger_p.total_busy_cycles(), ledger_r.total_busy_cycles());
    }

    #[test]
    fn compare_stage_agrees_under_seeded_faults(
        codes in proptest::collection::vec(0u8..4, 1..=128),
        stuck_enc in proptest::collection::vec(0usize..512, 0..4),
        seed in any::<u64>(),
        sentinel_enc in 0usize..256,
        within_frac in 0.0f64..=1.0,
        base_rank in 0usize..4,
        rounds in 1usize..8,
    ) {
        let sentinel = (sentinel_enc < 128).then_some(sentinel_enc);
        let within = (codes.len() as f64 * within_frac) as usize;
        let (packed, reference) = twin_arrays(&codes, &stuck_enc);
        let base = Base::from_rank(base_rank);
        let campaign = FaultCampaign::seeded(seed)
            .with_model(FaultModel::with_probabilities(0.05, 0.0))
            .with_transient_row_rate(0.2);
        let mut injector_p = FaultInjector::new(campaign);
        let mut injector_r = FaultInjector::new(campaign);
        let mut ledger_p = CycleLedger::new();
        let mut ledger_r = CycleLedger::new();
        // Several rounds through the same injectors: the RNG streams
        // must stay in lock-step across calls, not just on the first.
        for round in 0..rounds {
            let count_p = packed_compare_stage(
                &packed, 0, base, sentinel, within, Some(&mut injector_p), &mut ledger_p,
            );
            let count_r = reference_compare_stage(
                &reference, 0, base, sentinel, within, Some(&mut injector_r), &mut ledger_r,
            );
            prop_assert_eq!(count_p, count_r, "diverged at round {}", round);
        }
        prop_assert_eq!(injector_p.counters(), injector_r.counters());
        prop_assert_eq!(ledger_p.total_busy_cycles(), ledger_r.total_busy_cycles());
        prop_assert_eq!(ledger_p.primitives(), ledger_r.primitives());
    }

    #[test]
    fn batched_compare_matches_reference_clean(
        codes in proptest::collection::vec(0u8..4, 1..=128),
        stuck_enc in proptest::collection::vec(0usize..512, 0..4),
        sentinel_enc in 0usize..256,
        // Encoded request: low 2 bits the stream, next 2 the base rank,
        // the rest the prefix limit (vendored proptest has no tuples).
        sched_enc in proptest::collection::vec(0usize..(16 * 129), 1..24),
    ) {
        let sentinel = (sentinel_enc < 128).then_some(sentinel_enc);
        let (packed, reference) = twin_arrays(&codes, &stuck_enc);
        let mut batch = LfmBatch::new();
        for &enc in &sched_enc {
            let (stream, rank, within) = (enc % 4, (enc / 4) % 4, enc / 16);
            batch.push(stream, 0, Base::from_rank(rank), within);
        }
        let mut ledger_b = CycleLedger::new();
        let groups =
            batch.run_compare(&packed, sentinel.map(|col| (0, col)), &mut ledger_b);
        let counts = batch.counts(&packed, &mut [], &mut ledger_b);
        // The plane load was charged once per (bucket, base) group, not
        // once per request.
        prop_assert_eq!(ledger_b.primitives().count(LogicalOp::XnorMatch), groups as u64);
        let mut ledger_r = CycleLedger::new();
        for (i, &enc) in sched_enc.iter().enumerate() {
            let (rank, within) = ((enc / 4) % 4, enc / 16);
            let expected = reference_compare_stage(
                &reference, 0, Base::from_rank(rank), sentinel, within, None, &mut ledger_r,
            );
            prop_assert_eq!(counts[i], expected, "request {}", i);
        }
    }

    #[test]
    fn batched_compare_replays_reference_fault_streams_lock_step(
        codes in proptest::collection::vec(0u8..4, 1..=128),
        stuck_enc in proptest::collection::vec(0usize..512, 0..4),
        seed in any::<u64>(),
        sentinel_enc in 0usize..256,
        sched_enc in proptest::collection::vec(0usize..(16 * 129), 1..16),
        rounds in 1usize..4,
    ) {
        let sentinel = (sentinel_enc < 128).then_some(sentinel_enc);
        let (packed, reference) = twin_arrays(&codes, &stuck_enc);
        let campaign = FaultCampaign::seeded(seed)
            .with_model(FaultModel::with_probabilities(0.05, 0.0))
            .with_transient_row_rate(0.2);
        // One injector per read stream, shared by the batch across
        // rounds; the per-stream oracle injectors must stay in
        // lock-step however the batch groups the requests.
        let mut inj_b: Vec<FaultInjector> =
            (0..4).map(|s| FaultInjector::new(campaign.for_read(s))).collect();
        let mut inj_r: Vec<FaultInjector> =
            (0..4).map(|s| FaultInjector::new(campaign.for_read(s))).collect();
        let mut ledger_b = CycleLedger::new();
        let mut ledger_r = CycleLedger::new();
        for round in 0..rounds {
            let mut batch = LfmBatch::new();
            for &enc in &sched_enc {
                let (stream, rank, within) = (enc % 4, (enc / 4) % 4, enc / 16);
                batch.push(stream, 0, Base::from_rank(rank), within);
            }
            batch.run_compare(&packed, sentinel.map(|col| (0, col)), &mut ledger_b);
            let counts = batch.counts(&packed, &mut inj_b, &mut ledger_b);
            for (i, &enc) in sched_enc.iter().enumerate() {
                let (stream, rank, within) = (enc % 4, (enc / 4) % 4, enc / 16);
                let expected = reference_compare_stage(
                    &reference,
                    0,
                    Base::from_rank(rank),
                    sentinel,
                    within,
                    Some(&mut inj_r[stream]),
                    &mut ledger_r,
                );
                prop_assert_eq!(counts[i], expected, "round {} request {}", round, i);
            }
        }
        for s in 0..4 {
            prop_assert_eq!(inj_b[s].counters(), inj_r[s].counters(), "stream {}", s);
        }
    }

    /// PR 9: the SIMD-dispatched kernel is a third implementation of the
    /// same compare stage. Over random rows, all three — boolean
    /// reference, packed scalar, packed SIMD — agree bit-for-bit and
    /// cycle-for-cycle on every base and prefix limit.
    #[test]
    fn simd_kernel_is_bit_and_cycle_identical_to_scalar_and_reference(
        codes in proptest::collection::vec(0u8..4, 0..=128),
        stuck_enc in proptest::collection::vec(0usize..512, 0..6),
        within in 0usize..=128,
    ) {
        let (packed, reference) = twin_arrays(&codes, &stuck_enc);
        let mut ledger_v = CycleLedger::new();
        let mut ledger_s = CycleLedger::new();
        let mut ledger_r = CycleLedger::new();
        for base in Base::ALL {
            let simd = packed.xnor_match_with(0, base, SimdPolicy::Auto, &mut ledger_v);
            let scalar = packed.xnor_match_with(0, base, SimdPolicy::Scalar, &mut ledger_s);
            let bools = reference.xnor_match(0, base, &mut ledger_r);
            prop_assert_eq!(simd.0, scalar.0, "mask words, base {}", base);
            prop_assert_eq!(simd.to_bools(), bools, "base {}", base);
            prop_assert_eq!(
                simd.count_prefix_with(within, SimdPolicy::Auto),
                scalar.count_prefix_with(within, SimdPolicy::Scalar),
                "prefix count at {}, base {}", within, base
            );
        }
        // The lane choice is invisible to the platform: identical charges.
        prop_assert_eq!(ledger_v.total_busy_cycles(), ledger_s.total_busy_cycles());
        prop_assert_eq!(ledger_v.primitives(), ledger_s.primitives());
        prop_assert_eq!(ledger_s.total_busy_cycles(), ledger_r.total_busy_cycles());
    }

    /// PR 9: the cached SIMD batch path replays the scalar fault streams
    /// in lock-step. A rank-checkpoint cache hit must charge the exact
    /// op sequence the recompute pays and corrupt a private mask copy,
    /// so counts, injector counters, cycles, and primitives all match
    /// the uncached scalar batch — across rounds, where later rounds hit
    /// the cache.
    #[test]
    fn cached_simd_batch_replays_scalar_fault_streams_lock_step(
        codes in proptest::collection::vec(0u8..4, 1..=128),
        stuck_enc in proptest::collection::vec(0usize..512, 0..4),
        seed in any::<u64>(),
        sentinel_enc in 0usize..256,
        sched_enc in proptest::collection::vec(0usize..(16 * 129), 1..16),
        rounds in 1usize..4,
    ) {
        let sentinel = (sentinel_enc < 128).then_some(sentinel_enc);
        let (packed, _) = twin_arrays(&codes, &stuck_enc);
        let campaign = FaultCampaign::seeded(seed)
            .with_model(FaultModel::with_probabilities(0.05, 0.0))
            .with_transient_row_rate(0.2);
        let mut inj_v: Vec<FaultInjector> =
            (0..4).map(|s| FaultInjector::new(campaign.for_read(s))).collect();
        let mut inj_s: Vec<FaultInjector> =
            (0..4).map(|s| FaultInjector::new(campaign.for_read(s))).collect();
        let mut cache = KernelCache::new();
        let mut ledger_v = CycleLedger::new();
        let mut ledger_s = CycleLedger::new();
        for round in 0..rounds {
            let mut batch_v = LfmBatch::new();
            let mut batch_s = LfmBatch::new();
            for &enc in &sched_enc {
                let (stream, rank, within) = (enc % 4, (enc / 4) % 4, enc / 16);
                batch_v.push(stream, 0, Base::from_rank(rank), within);
                batch_s.push(stream, 0, Base::from_rank(rank), within);
            }
            batch_v.run_compare_with(
                &packed,
                sentinel.map(|col| (0, col)),
                SimdPolicy::Auto,
                Some(&mut cache),
                0,
                &mut ledger_v,
            );
            let counts_v = batch_v.counts_with(&packed, &mut inj_v, SimdPolicy::Auto, &mut ledger_v);
            batch_s.run_compare(&packed, sentinel.map(|col| (0, col)), &mut ledger_s);
            let counts_s = batch_s.counts(&packed, &mut inj_s, &mut ledger_s);
            prop_assert_eq!(&counts_v, &counts_s, "round {}", round);
            for i in 0..batch_v.len() {
                prop_assert_eq!(batch_v.mask(i).0, batch_s.mask(i).0, "round {} req {}", round, i);
                prop_assert_eq!(batch_v.marker(i), batch_s.marker(i), "round {} req {}", round, i);
            }
        }
        for s in 0..4 {
            prop_assert_eq!(inj_v[s].counters(), inj_s[s].counters(), "stream {}", s);
        }
        // Cache hits charged the identical op sequence: the simulated
        // ledgers agree on every platform-visible quantity; only the
        // host-side cache counters differ.
        prop_assert_eq!(ledger_v.total_busy_cycles(), ledger_s.total_busy_cycles());
        prop_assert_eq!(ledger_v.energy_pj(), ledger_s.energy_pj());
        prop_assert_eq!(ledger_v.primitives(), ledger_s.primitives());
        prop_assert_eq!(ledger_s.kernel_cache_counters().lookups(), 0);
        if rounds > 1 {
            prop_assert!(
                ledger_v.kernel_cache_counters().hits > 0,
                "repeat rounds over the same groups must hit the cache"
            );
        }
    }
}
