//! Property tests pinning the packed bit-plane kernel to the boolean
//! reference implementation (DESIGN.md §11).
//!
//! The bit-plane packing is a host-side optimisation: over random BWT
//! rows, bucket lengths, sentinel positions, stuck-at cells, and fault
//! seeds (campaigns on and off), the packed compare stage must return
//! exactly the reference's `count_match`, flip exactly the reference's
//! bits, and charge exactly the reference's cycles.

use bioseq::Base;
use mram::array::ArrayModel;
use mram::faults::{FaultCampaign, FaultModel};
use pimsim::costs::LogicalOp;
use pimsim::reference::{packed_compare_stage, reference_compare_stage, BoolSubArray};
use pimsim::{CycleLedger, FaultInjector, LfmBatch, SubArray};
use proptest::prelude::*;

/// Builds the packed and the reference sub-array with identical BWT
/// contents and identical stuck cells forced into bucket row 0.
fn twin_arrays(codes: &[u8], stuck_enc: &[usize]) -> (SubArray, BoolSubArray) {
    let model = ArrayModel::default();
    let mut scratch = CycleLedger::new();
    let mut packed = SubArray::new(model);
    let mut reference = BoolSubArray::new(model);
    packed.load_cref_rows(&mut scratch);
    reference.load_cref_rows(&mut scratch);
    packed.load_bwt_row(0, codes, &mut scratch);
    reference.load_bwt_row(0, codes, &mut scratch);
    // Encoded stuck cells: low 8 bits are the column, bit 8 the value
    // (the vendored proptest has no tuple strategies).
    for &enc in stuck_enc {
        let (col, value) = (enc % 256, enc >= 256);
        packed.force_bit(0, col, value);
        reference.force_bwt_bit(0, col, value);
    }
    (packed, reference)
}

proptest! {
    #[test]
    fn match_vectors_agree_bit_for_bit(
        codes in proptest::collection::vec(0u8..4, 0..=128),
        stuck_enc in proptest::collection::vec(0usize..512, 0..6),
    ) {
        let (packed, reference) = twin_arrays(&codes, &stuck_enc);
        let mut ledger_p = CycleLedger::new();
        let mut ledger_r = CycleLedger::new();
        for base in Base::ALL {
            let mask = packed.xnor_match(0, base, &mut ledger_p);
            let bools = reference.xnor_match(0, base, &mut ledger_r);
            prop_assert_eq!(mask.to_bools(), bools, "base {}", base);
        }
        prop_assert_eq!(ledger_p.total_busy_cycles(), ledger_r.total_busy_cycles());
        prop_assert_eq!(ledger_p.primitives(), ledger_r.primitives());
    }

    #[test]
    fn compare_stage_agrees_with_faults_off(
        codes in proptest::collection::vec(0u8..4, 1..=128),
        sentinel_enc in 0usize..256,
        within_frac in 0.0f64..=1.0,
        base_rank in 0usize..4,
    ) {
        let sentinel = (sentinel_enc < 128).then_some(sentinel_enc);
        let within = (codes.len() as f64 * within_frac) as usize;
        let (packed, reference) = twin_arrays(&codes, &[]);
        let base = Base::from_rank(base_rank);
        let mut ledger_p = CycleLedger::new();
        let mut ledger_r = CycleLedger::new();
        let count_p =
            packed_compare_stage(&packed, 0, base, sentinel, within, None, &mut ledger_p);
        let count_r =
            reference_compare_stage(&reference, 0, base, sentinel, within, None, &mut ledger_r);
        prop_assert_eq!(count_p, count_r);
        prop_assert_eq!(ledger_p.total_busy_cycles(), ledger_r.total_busy_cycles());
    }

    #[test]
    fn compare_stage_agrees_under_seeded_faults(
        codes in proptest::collection::vec(0u8..4, 1..=128),
        stuck_enc in proptest::collection::vec(0usize..512, 0..4),
        seed in any::<u64>(),
        sentinel_enc in 0usize..256,
        within_frac in 0.0f64..=1.0,
        base_rank in 0usize..4,
        rounds in 1usize..8,
    ) {
        let sentinel = (sentinel_enc < 128).then_some(sentinel_enc);
        let within = (codes.len() as f64 * within_frac) as usize;
        let (packed, reference) = twin_arrays(&codes, &stuck_enc);
        let base = Base::from_rank(base_rank);
        let campaign = FaultCampaign::seeded(seed)
            .with_model(FaultModel::with_probabilities(0.05, 0.0))
            .with_transient_row_rate(0.2);
        let mut injector_p = FaultInjector::new(campaign);
        let mut injector_r = FaultInjector::new(campaign);
        let mut ledger_p = CycleLedger::new();
        let mut ledger_r = CycleLedger::new();
        // Several rounds through the same injectors: the RNG streams
        // must stay in lock-step across calls, not just on the first.
        for round in 0..rounds {
            let count_p = packed_compare_stage(
                &packed, 0, base, sentinel, within, Some(&mut injector_p), &mut ledger_p,
            );
            let count_r = reference_compare_stage(
                &reference, 0, base, sentinel, within, Some(&mut injector_r), &mut ledger_r,
            );
            prop_assert_eq!(count_p, count_r, "diverged at round {}", round);
        }
        prop_assert_eq!(injector_p.counters(), injector_r.counters());
        prop_assert_eq!(ledger_p.total_busy_cycles(), ledger_r.total_busy_cycles());
        prop_assert_eq!(ledger_p.primitives(), ledger_r.primitives());
    }

    #[test]
    fn batched_compare_matches_reference_clean(
        codes in proptest::collection::vec(0u8..4, 1..=128),
        stuck_enc in proptest::collection::vec(0usize..512, 0..4),
        sentinel_enc in 0usize..256,
        // Encoded request: low 2 bits the stream, next 2 the base rank,
        // the rest the prefix limit (vendored proptest has no tuples).
        sched_enc in proptest::collection::vec(0usize..(16 * 129), 1..24),
    ) {
        let sentinel = (sentinel_enc < 128).then_some(sentinel_enc);
        let (packed, reference) = twin_arrays(&codes, &stuck_enc);
        let mut batch = LfmBatch::new();
        for &enc in &sched_enc {
            let (stream, rank, within) = (enc % 4, (enc / 4) % 4, enc / 16);
            batch.push(stream, 0, Base::from_rank(rank), within);
        }
        let mut ledger_b = CycleLedger::new();
        let groups =
            batch.run_compare(&packed, sentinel.map(|col| (0, col)), &mut ledger_b);
        let counts = batch.counts(&packed, &mut [], &mut ledger_b);
        // The plane load was charged once per (bucket, base) group, not
        // once per request.
        prop_assert_eq!(ledger_b.primitives().count(LogicalOp::XnorMatch), groups as u64);
        let mut ledger_r = CycleLedger::new();
        for (i, &enc) in sched_enc.iter().enumerate() {
            let (rank, within) = ((enc / 4) % 4, enc / 16);
            let expected = reference_compare_stage(
                &reference, 0, Base::from_rank(rank), sentinel, within, None, &mut ledger_r,
            );
            prop_assert_eq!(counts[i], expected, "request {}", i);
        }
    }

    #[test]
    fn batched_compare_replays_reference_fault_streams_lock_step(
        codes in proptest::collection::vec(0u8..4, 1..=128),
        stuck_enc in proptest::collection::vec(0usize..512, 0..4),
        seed in any::<u64>(),
        sentinel_enc in 0usize..256,
        sched_enc in proptest::collection::vec(0usize..(16 * 129), 1..16),
        rounds in 1usize..4,
    ) {
        let sentinel = (sentinel_enc < 128).then_some(sentinel_enc);
        let (packed, reference) = twin_arrays(&codes, &stuck_enc);
        let campaign = FaultCampaign::seeded(seed)
            .with_model(FaultModel::with_probabilities(0.05, 0.0))
            .with_transient_row_rate(0.2);
        // One injector per read stream, shared by the batch across
        // rounds; the per-stream oracle injectors must stay in
        // lock-step however the batch groups the requests.
        let mut inj_b: Vec<FaultInjector> =
            (0..4).map(|s| FaultInjector::new(campaign.for_read(s))).collect();
        let mut inj_r: Vec<FaultInjector> =
            (0..4).map(|s| FaultInjector::new(campaign.for_read(s))).collect();
        let mut ledger_b = CycleLedger::new();
        let mut ledger_r = CycleLedger::new();
        for round in 0..rounds {
            let mut batch = LfmBatch::new();
            for &enc in &sched_enc {
                let (stream, rank, within) = (enc % 4, (enc / 4) % 4, enc / 16);
                batch.push(stream, 0, Base::from_rank(rank), within);
            }
            batch.run_compare(&packed, sentinel.map(|col| (0, col)), &mut ledger_b);
            let counts = batch.counts(&packed, &mut inj_b, &mut ledger_b);
            for (i, &enc) in sched_enc.iter().enumerate() {
                let (stream, rank, within) = (enc % 4, (enc / 4) % 4, enc / 16);
                let expected = reference_compare_stage(
                    &reference,
                    0,
                    Base::from_rank(rank),
                    sentinel,
                    within,
                    Some(&mut inj_r[stream]),
                    &mut ledger_r,
                );
                prop_assert_eq!(counts[i], expected, "round {} request {}", round, i);
            }
        }
        for s in 0..4 {
            prop_assert_eq!(inj_b[s].counters(), inj_r[s].counters(), "stream {}", s);
        }
    }
}
